"""Parallel campaign execution over ``concurrent.futures``.

The executor turns a list of :class:`~repro.campaign.spec.RunSpec` into
:class:`RunOutcome`s:

* runs already in the :class:`~repro.campaign.store.ResultStore` are served
  from disk (``status="cached"``) without touching a worker;
* the rest fan out over a ``ProcessPoolExecutor``; each worker keeps a
  process-local Runner per configuration fingerprint so traces and
  alone-run baselines are generated once per worker, and persists its
  result to the store *before* returning — a campaign killed mid-flight
  therefore resumes from everything that finished;
* a worker crash (``BrokenProcessPool``) or a raised error consumes one of
  the run's bounded attempts; a run out of attempts is reported as
  ``status="failed"`` without aborting the rest of the grid;
* per-run timeouts are enforced with ``SIGALRM`` in pooled workers and in
  the serial path alike (POSIX main thread only; elsewhere the timeout is
  advisory);
* when ``jobs=1``, or the platform cannot provide a process pool, the whole
  plan degrades gracefully to serial in-process execution — the exact same
  code path a worker runs, so metrics are bit-identical either way.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..sim.runner import RunResult
from .spec import RunSpec
from .store import ResultStore

#: Called after every settled run: (outcome, done_count, total_count).
ProgressFn = Callable[["RunOutcome", int, int], None]


class RunTimeoutError(ReproError):
    """A run exceeded the campaign's per-run timeout."""


@dataclass
class RunOutcome:
    """What happened to one planned run."""

    spec: RunSpec
    status: str  # "ok" | "cached" | "failed"
    result: Optional[RunResult] = None
    error: str = ""
    wall_clock: float = 0.0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class CampaignResult:
    """Every outcome of one executed plan, in plan order."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    wall_clock: float = 0.0

    def with_status(self, status: str) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def executed(self) -> List[RunOutcome]:
        return self.with_status("ok")

    @property
    def cached(self) -> List[RunOutcome]:
        return self.with_status("cached")

    @property
    def failed(self) -> List[RunOutcome]:
        return self.with_status("failed")

    @property
    def cache_hit_rate(self) -> float:
        return len(self.cached) / len(self.outcomes) if self.outcomes else 0.0


# ---------------------------------------------------------------------------
# Worker side. Everything here must be importable (top-level) and picklable.
# ---------------------------------------------------------------------------
_WORKER_RUNNERS: Dict[str, object] = {}
_WORKER_STORES: Dict[str, ResultStore] = {}


def _runner_for(spec: RunSpec):
    """A process-local Runner matching the spec's scope (cached)."""
    from ..sim.runner import Runner
    from ..telemetry import TelemetryConfig

    telemetry = getattr(spec, "telemetry", False)
    key = (spec.runner_key(), telemetry)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = Runner(
            config=spec.config,
            horizon=spec.horizon,
            seed=spec.seed,
            target_insts=spec.target_insts,
            validate=spec.validate,
            ahead_limit=spec.ahead_limit,
            telemetry=TelemetryConfig() if telemetry else None,
        )
        _WORKER_RUNNERS[key] = runner
    return runner


def execute_one(spec: RunSpec) -> Tuple[RunResult, float]:
    """Run one spec in this process; returns (result, wall-clock seconds)."""
    runner = _runner_for(spec)
    started = time.perf_counter()
    result = runner.run_apps(
        list(spec.apps), spec.approach, mix_name=spec.mix_name
    )
    return result, time.perf_counter() - started


def _alarm_handler(signum, frame):  # pragma: no cover - fires in workers
    raise RunTimeoutError("per-run timeout expired")


def _execute_with_timeout(
    spec: RunSpec, timeout: Optional[float]
) -> Tuple[RunResult, float]:
    """Run one spec under a SIGALRM deadline (POSIX main thread only)."""
    alarmed = False
    if (
        timeout
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        signal.signal(signal.SIGALRM, _alarm_handler)
        # Repeating interval: if the first alarm lands while the interpreter
        # is inside a C-level callback that swallows exceptions (e.g. a GC
        # hook), the timeout would otherwise be silently lost. A re-firing
        # timer guarantees a later alarm reaches normal bytecode.
        signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 0.05))
        alarmed = True
    try:
        return execute_one(spec)
    finally:
        if alarmed:
            signal.setitimer(signal.ITIMER_REAL, 0)


def _worker(
    spec: RunSpec, store_root: Optional[str], timeout: Optional[float]
) -> Tuple[RunResult, float]:
    """Pool entry point: run, persist to the store, return the result."""
    result, wall = _execute_with_timeout(spec, timeout)
    if store_root is not None:
        store = _WORKER_STORES.get(store_root)
        if store is None:
            store = ResultStore(store_root)
            _WORKER_STORES[store_root] = store
        store.put(spec.key(), result, wall, describe=_describe(spec, result))
    return result, wall


def _describe(spec: RunSpec, result: Optional[RunResult] = None) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "mix": spec.mix_name or "+".join(spec.apps),
        "apps": list(spec.apps),
        "approach": spec.approach,
        "seed": spec.seed,
        "horizon": spec.horizon,
        "target_insts": spec.target_insts,
    }
    if spec.trace_digests:
        doc["trace_digests"] = dict(spec.trace_digests)
    if result is not None and result.telemetry is not None:
        doc["telemetry"] = result.telemetry
    return doc


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------
def execute(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Execute a plan; never raises for individual run failures.

    ``retries`` bounds *additional* attempts after the first, so the
    default reports a run as failed once it has failed twice.
    """
    started = time.perf_counter()
    total = len(specs)
    outcomes: Dict[int, RunOutcome] = {}
    pending: List[int] = []
    for index, spec in enumerate(specs):
        hit = store.get(spec.key()) if store is not None else None
        if hit is not None:
            result, original_wall = hit
            outcomes[index] = RunOutcome(
                spec, "cached", result, wall_clock=original_wall
            )
            if progress:
                progress(outcomes[index], len(outcomes), total)
        else:
            pending.append(index)

    if pending:
        if jobs > 1:
            _execute_pooled(
                specs, pending, outcomes, jobs, store, retries, timeout,
                progress, total,
            )
        else:
            _execute_serial(
                specs, pending, outcomes, store, progress, total, timeout
            )

    ordered = [outcomes[i] for i in sorted(outcomes)]
    return CampaignResult(
        outcomes=ordered, wall_clock=time.perf_counter() - started
    )


def _execute_serial(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    outcomes: Dict[int, RunOutcome],
    store: Optional[ResultStore],
    progress: Optional[ProgressFn],
    total: int,
    timeout: Optional[float] = None,
) -> None:
    for index in pending:
        spec = specs[index]
        try:
            result, wall = _execute_with_timeout(spec, timeout)
        except ReproError as error:
            outcomes[index] = RunOutcome(
                spec, "failed", error=str(error), attempts=1
            )
        else:
            if store is not None:
                store.put(
                    spec.key(), result, wall, describe=_describe(spec, result)
                )
            outcomes[index] = RunOutcome(
                spec, "ok", result, wall_clock=wall, attempts=1
            )
        if progress:
            progress(outcomes[index], len(outcomes), total)


def _execute_pooled(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    outcomes: Dict[int, RunOutcome],
    jobs: int,
    store: Optional[ResultStore],
    retries: int,
    timeout: Optional[float],
    progress: Optional[ProgressFn],
    total: int,
) -> None:
    store_root = str(store.root) if store is not None else None
    attempts: Dict[int, int] = {index: 0 for index in pending}
    queue: List[int] = list(pending)
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, int] = {}

    def settle(index: int, outcome: RunOutcome) -> None:
        outcomes[index] = outcome
        if progress:
            progress(outcome, len(outcomes), total)

    def fail_or_requeue(index: int, error: str) -> None:
        if attempts[index] <= retries:
            queue.append(index)
        else:
            settle(
                index,
                RunOutcome(
                    specs[index],
                    "failed",
                    error=error,
                    attempts=attempts[index],
                ),
            )

    try:
        while queue or futures:
            if pool is None and queue:
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=min(jobs, max(1, len(queue)))
                    )
                except (OSError, ValueError, RuntimeError):
                    # No process pool on this platform/sandbox: degrade to
                    # serial for everything still unfinished.
                    remaining = sorted(set(queue) | set(futures.values()))
                    futures.clear()
                    _execute_serial(
                        specs, remaining, outcomes, store, progress, total,
                        timeout,
                    )
                    return
            while queue:
                index = queue.pop(0)
                try:
                    future = pool.submit(
                        _worker, specs[index], store_root, timeout
                    )
                except BrokenProcessPool:
                    queue.insert(0, index)
                    break
                attempts[index] += 1
                futures[future] = index
            if not futures:
                # Every submit bounced off a broken pool: rebuild it.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                continue
            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index = futures.pop(future)
                try:
                    result, wall = future.result()
                except BrokenProcessPool:
                    broken = True
                    fail_or_requeue(index, "worker process died")
                except Exception as error:  # raised inside the worker
                    fail_or_requeue(index, f"{type(error).__name__}: {error}")
                else:
                    settle(
                        index,
                        RunOutcome(
                            specs[index],
                            "ok",
                            result,
                            wall_clock=wall,
                            attempts=attempts[index],
                        ),
                    )
            if broken:
                # The pool is unusable; in-flight futures are lost too.
                for future, index in list(futures.items()):
                    fail_or_requeue(index, "worker process died")
                futures.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
