"""Equal static bank partitioning (EBP).

The prior bank-partitioning scheme DBP improves on (Jeong et al. HPCA 2012,
Liu et al. PACT 2012): bank colors are divided evenly among cores once, at
start of run. Interference disappears, but every thread — including ones
with high bank-level parallelism — is boxed into ``colors / cores`` banks,
which is exactly the BLP loss the paper's motivation section quantifies.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from .base import PartitionContext, PartitionPolicy, register_policy


@register_policy
class EqualBankPartitioning(PartitionPolicy):
    """Static even split of bank colors among threads."""

    name = "ebp"
    epoch_cycles = None

    def initialize(self, context: PartitionContext) -> None:
        assignments = self.compute_assignment(
            context.num_threads, context.total_bank_colors
        )
        for thread_id, colors in assignments.items():
            context.apply_bank_colors(thread_id, colors, migrate=False)

    @staticmethod
    def compute_assignment(num_threads: int, num_colors: int) -> Dict[int, List[int]]:
        """Contiguous even split; earlier threads absorb the remainder.

        Exposed as a static method because DBP uses the same split as its
        cold-start assignment before the first profile exists.
        """
        if num_threads > num_colors:
            raise ConfigError(
                f"cannot give {num_threads} threads at least one of "
                f"{num_colors} colors each"
            )
        base, extra = divmod(num_colors, num_threads)
        assignments: Dict[int, List[int]] = {}
        start = 0
        for thread_id in range(num_threads):
            count = base + (1 if thread_id < extra else 0)
            assignments[thread_id] = list(range(start, start + count))
            start += count
        return assignments
