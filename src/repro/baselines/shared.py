"""No partitioning: the unmanaged shared-memory baseline."""

from __future__ import annotations

from .base import PartitionContext, PartitionPolicy, register_policy


@register_policy
class SharedPolicy(PartitionPolicy):
    """Every thread may allocate from every bank and channel.

    This is the configuration whose inter-thread interference the whole
    paper is about; combined with FR-FCFS it is the "shared" baseline of
    figures F2/F3.
    """

    name = "shared"
    epoch_cycles = None

    def initialize(self, context: PartitionContext) -> None:
        all_colors = range(context.total_bank_colors)
        all_channels = range(context.total_channels)
        for thread_id in range(context.num_threads):
            context.apply_bank_colors(thread_id, all_colors, migrate=False)
            context.apply_channels(thread_id, all_channels, migrate=False)
