"""Partitioning baselines the paper compares against.

* :class:`~repro.baselines.shared.SharedPolicy` — no partitioning at all
  (every thread allocates anywhere); the unmanaged baseline.
* :class:`~repro.baselines.equal.EqualBankPartitioning` — static equal split
  of bank colors among cores (the prior bank-partitioning work DBP improves
  on).
* :class:`~repro.baselines.mcp.MemoryChannelPartitioning` — MCP from
  Muralidhara et al., MICRO 2011, reimplemented.
"""

from .base import PartitionContext, PartitionPolicy, make_policy, policy_names
from .shared import SharedPolicy
from .equal import EqualBankPartitioning
from .mcp import MemoryChannelPartitioning, MCPConfig
from .fixed import FixedAllocationPolicy

__all__ = [
    "PartitionContext",
    "PartitionPolicy",
    "make_policy",
    "policy_names",
    "SharedPolicy",
    "EqualBankPartitioning",
    "MemoryChannelPartitioning",
    "MCPConfig",
    "FixedAllocationPolicy",
]
