"""Partitioning policy interface.

A policy decides which bank colors (and channels) each thread may allocate
from. Static policies set constraints once; dynamic policies also receive a
profile snapshot every epoch. The :class:`PartitionContext` wraps the
allocator, page tables, and migration engine so policies can change
constraints and move already-resident pages with one call, with the copy
traffic injected into the real memory system.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, Optional

from ..errors import ConfigError
from ..mapping import AddressMap
from ..memctrl.schedulers.base import ProfileSnapshot
from ..osmm import ColorAwareAllocator, MigrationEngine, MigrationPlan, PageTable


class PartitionContext:
    """Everything a partitioning policy may act on."""

    def __init__(
        self,
        allocator: ColorAwareAllocator,
        address_map: AddressMap,
        page_tables: Dict[int, PageTable],
        migration: Optional[MigrationEngine],
        inject_copy_traffic: Callable[[MigrationPlan], None],
    ) -> None:
        self.allocator = allocator
        self.address_map = address_map
        self.page_tables = page_tables
        self.migration = migration
        self.inject_copy_traffic = inject_copy_traffic

    @property
    def num_threads(self) -> int:
        return len(self.page_tables)

    @property
    def total_bank_colors(self) -> int:
        return self.address_map.bank_colors

    @property
    def total_channels(self) -> int:
        return self.address_map.org.channels

    def apply_bank_colors(
        self, thread_id: int, colors: Iterable[int], migrate: bool = True
    ) -> int:
        """Constrain a thread to ``colors``; returns pages migrated."""
        color_set = frozenset(colors)
        self.allocator.set_thread_colors(thread_id, color_set)
        if migrate and self.migration is not None:
            plan = self.migration.migrate(self.page_tables[thread_id], color_set)
            if plan.moved_pages:
                self.inject_copy_traffic(plan)
            return plan.moved_pages
        return 0

    def apply_channels(
        self, thread_id: int, channels: Iterable[int], migrate: bool = True
    ) -> int:
        """Constrain a thread to ``channels``; returns pages migrated."""
        channel_set = frozenset(channels)
        self.allocator.set_thread_channels(thread_id, channel_set)
        if migrate and self.migration is not None:
            plan = self.migration.migrate(
                self.page_tables[thread_id],
                self.allocator.thread_colors(thread_id),
                channel_set,
            )
            if plan.moved_pages:
                self.inject_copy_traffic(plan)
            return plan.moved_pages
        return 0


class PartitionPolicy(abc.ABC):
    """Base class for partitioning policies."""

    #: Registry / report name; subclasses override.
    name = "base"
    #: Repartitioning period in CPU cycles; None for static policies.
    epoch_cycles: Optional[int] = None
    #: Offset of the first epoch boundary within the period, so a policy's
    #: epoch can be staggered against the scheduler's quantum. Must satisfy
    #: ``0 <= epoch_offset < epoch_cycles``; the system builder validates.
    epoch_offset: int = 0

    @abc.abstractmethod
    def initialize(self, context: PartitionContext) -> None:
        """Set the initial constraints (before any instruction runs)."""

    def on_epoch(self, snapshot: ProfileSnapshot, context: PartitionContext) -> None:
        """React to an epoch's profile (dynamic policies only)."""


_REGISTRY: Dict[str, type] = {}


def register_policy(cls: type) -> type:
    """Class decorator adding a policy to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def make_policy(name: str, **params: object) -> PartitionPolicy:
    """Instantiate a partitioning policy by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown partition policy {name!r}; known: {known}"
        ) from None
    return cls(**params)


def policy_names() -> list:
    """All registered policy names."""
    return sorted(_REGISTRY)
