"""Memory Channel Partitioning (Muralidhara et al., MICRO 2011).

MCP maps the data of threads likely to interfere onto *different channels*:
each epoch, threads are classified by memory intensity (MPKI) and, among the
intensive ones, by row-buffer locality. The two intensive groups receive
disjoint channel sets sized proportionally to their aggregate bandwidth
demand, and each intensive thread is then assigned one preferred channel
within its group's set, balancing load greedily. Low-intensity threads keep
all channels (their light traffic interferes little; this reconstruction is
documented in DESIGN.md).

The behaviour the DBP abstract criticizes emerges directly from this
construction: intensive threads get squeezed onto channel subsets together,
which physically concentrates their contention and inflates their slowdown —
hence MCP's weak fairness in experiment F4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError
from ..memctrl.schedulers.base import ProfileSnapshot
from ..utils import largest_remainder_shares
from .base import PartitionContext, PartitionPolicy, register_policy


@dataclass(frozen=True)
class MCPConfig:
    """Classification thresholds for MCP."""

    low_mpki_threshold: float = 1.0
    high_rbh_threshold: float = 0.5
    epoch_cycles: int = 25_000

    def __post_init__(self) -> None:
        if self.low_mpki_threshold < 0:
            raise ConfigError("low_mpki_threshold must be >= 0")
        if not 0.0 < self.high_rbh_threshold <= 1.0:
            raise ConfigError("high_rbh_threshold must be in (0, 1]")
        if self.epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be >= 1")


@register_policy
class MemoryChannelPartitioning(PartitionPolicy):
    """Epoch-based channel partitioning by intensity and locality."""

    name = "mcp"

    def __init__(self, config: MCPConfig = MCPConfig()) -> None:
        self.config = config
        self.epoch_cycles = config.epoch_cycles
        self.last_assignment: Dict[int, List[int]] = {}

    def initialize(self, context: PartitionContext) -> None:
        # Before the first profile, behave like the shared baseline.
        all_channels = list(range(context.total_channels))
        all_colors = list(range(context.total_bank_colors))
        for thread_id in range(context.num_threads):
            context.apply_channels(thread_id, all_channels, migrate=False)
            context.apply_bank_colors(thread_id, all_colors, migrate=False)

    # ------------------------------------------------------------------
    def on_epoch(self, snapshot: ProfileSnapshot, context: PartitionContext) -> None:
        assignment = self.compute_assignment(snapshot, context)
        for thread_id, channels in assignment.items():
            context.apply_channels(thread_id, channels)
        self.last_assignment = assignment

    def compute_assignment(
        self, snapshot: ProfileSnapshot, context: PartitionContext
    ) -> Dict[int, List[int]]:
        """Channel set per thread for the coming epoch."""
        num_channels = context.total_channels
        all_channels = list(range(num_channels))
        profiles = [
            snapshot.profile(t) for t in range(context.num_threads)
        ]
        low = [p for p in profiles if p.mpki < self.config.low_mpki_threshold]
        intensive = [
            p for p in profiles if p.mpki >= self.config.low_mpki_threshold
        ]
        assignment: Dict[int, List[int]] = {
            p.thread_id: all_channels for p in low
        }
        if not intensive or num_channels < 2:
            for p in intensive:
                assignment[p.thread_id] = all_channels
            return assignment
        high_rbh = [p for p in intensive if p.rbh >= self.config.high_rbh_threshold]
        low_rbh = [p for p in intensive if p.rbh < self.config.high_rbh_threshold]
        groups = [g for g in (high_rbh, low_rbh) if g]
        demands = [sum(p.bandwidth for p in g) or len(g) for g in groups]
        shares = largest_remainder_shares(demands, num_channels)
        # Every non-empty group gets at least one channel.
        for index in range(len(shares)):
            while shares[index] == 0:
                donor = max(range(len(shares)), key=lambda i: shares[i])
                shares[donor] -= 1
                shares[index] += 1
        start = 0
        for group, share in zip(groups, shares):
            group_channels = all_channels[start : start + share]
            start += share
            self._assign_within_group(group, group_channels, assignment)
        return assignment

    @staticmethod
    def _assign_within_group(
        group: List, channels: List[int], assignment: Dict[int, List[int]]
    ) -> None:
        """Greedy per-thread preferred-channel choice balancing bandwidth."""
        load = {channel: 0.0 for channel in channels}
        for profile in sorted(group, key=lambda p: (-p.bandwidth, p.thread_id)):
            channel = min(channels, key=lambda c: (load[c], c))
            load[channel] += profile.bandwidth or 1e-9
            assignment[profile.thread_id] = [channel]
