"""Fixed (externally chosen) static allocations.

Used by the motivation experiment (bank-count sensitivity of a single
thread) and handy for what-if studies: you specify exactly which bank
colors each thread owns and nothing changes at run time.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..errors import ConfigError
from .base import PartitionContext, PartitionPolicy, register_policy


@register_policy
class FixedAllocationPolicy(PartitionPolicy):
    """Static allocation given explicitly as {thread_id: colors}."""

    name = "fixed"
    epoch_cycles = None

    def __init__(self, allocation: Mapping[int, Sequence[int]]) -> None:
        if not allocation:
            raise ConfigError("fixed allocation must not be empty")
        self.allocation: Dict[int, list] = {
            int(t): list(colors) for t, colors in allocation.items()
        }

    def initialize(self, context: PartitionContext) -> None:
        for thread_id in range(context.num_threads):
            if thread_id not in self.allocation:
                raise ConfigError(
                    f"fixed allocation missing thread {thread_id}"
                )
            context.apply_bank_colors(
                thread_id, self.allocation[thread_id], migrate=False
            )
