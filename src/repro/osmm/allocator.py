"""Color-constrained physical frame allocator.

The allocator hands out frames from (channel, bank-color) bins. Each thread
carries an *allowed* set of bank colors and channels — the knobs the
partitioning policies turn. Allocation round-robins a thread's pages across
its allowed channels (preserving channel-level parallelism under bank
partitioning) and across its allowed colors (spreading its footprint over
its banks), while filling each bin sequentially so that pages allocated
together enjoy row-buffer locality.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from ..errors import AllocationError
from ..mapping import AddressMap


class _Bin:
    """Frames of one (channel, color) bin: a fresh cursor plus a free list."""

    __slots__ = ("channel", "color", "capacity", "next_fresh", "free_frames")

    def __init__(self, channel: int, color: int, capacity: int) -> None:
        self.channel = channel
        self.color = color
        self.capacity = capacity
        self.next_fresh = 0
        self.free_frames: List[int] = []

    def available(self) -> int:
        return (self.capacity - self.next_fresh) + len(self.free_frames)

    def take_slot(self) -> Optional[int]:
        """Next free slot index in this bin, or None when exhausted."""
        if self.free_frames:
            return self.free_frames.pop()
        if self.next_fresh < self.capacity:
            slot = self.next_fresh
            self.next_fresh += 1
            return slot
        return None


class ColorAwareAllocator:
    """Physical frame allocator with per-thread color/channel constraints."""

    def __init__(self, address_map: AddressMap) -> None:
        self.address_map = address_map
        org = address_map.org
        self._bins: Dict[tuple, _Bin] = {
            (ch, color): _Bin(ch, color, address_map.frames_per_bin)
            for ch in range(org.channels)
            for color in range(address_map.bank_colors)
        }
        self._all_colors = frozenset(range(address_map.bank_colors))
        self._all_channels = frozenset(range(org.channels))
        self._thread_colors: Dict[int, FrozenSet[int]] = {}
        self._thread_channels: Dict[int, FrozenSet[int]] = {}
        # Round-robin cursors so a thread's pages spread over its resources.
        self._chan_cursor: Dict[int, int] = {}
        self._color_cursor: Dict[int, int] = {}
        self.stat_allocations = 0
        self.stat_frees = 0

    # ------------------------------------------------------------------
    # Policy surface.
    # ------------------------------------------------------------------
    def set_thread_colors(self, thread_id: int, colors: Iterable[int]) -> None:
        """Restrict ``thread_id``'s future allocations to ``colors``."""
        color_set = frozenset(colors)
        if not color_set:
            raise AllocationError(f"thread {thread_id} given an empty color set")
        bad = color_set - self._all_colors
        if bad:
            raise AllocationError(f"unknown bank colors {sorted(bad)}")
        self._thread_colors[thread_id] = color_set

    def set_thread_channels(self, thread_id: int, channels: Iterable[int]) -> None:
        """Restrict ``thread_id``'s future allocations to ``channels``."""
        channel_set = frozenset(channels)
        if not channel_set:
            raise AllocationError(
                f"thread {thread_id} given an empty channel set"
            )
        bad = channel_set - self._all_channels
        if bad:
            raise AllocationError(f"unknown channels {sorted(bad)}")
        self._thread_channels[thread_id] = channel_set

    def thread_colors(self, thread_id: int) -> FrozenSet[int]:
        """Bank colors ``thread_id`` may currently allocate from."""
        return self._thread_colors.get(thread_id, self._all_colors)

    def thread_channels(self, thread_id: int) -> FrozenSet[int]:
        """Channels ``thread_id`` may currently allocate from."""
        return self._thread_channels.get(thread_id, self._all_channels)

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def allocate(self, thread_id: int) -> int:
        """Allocate one frame for ``thread_id`` within its constraints.

        Channels and colors are visited round-robin per thread; if the
        preferred bin is exhausted the other permitted bins are tried before
        giving up.
        """
        channels = sorted(self.thread_channels(thread_id))
        colors = sorted(self.thread_colors(thread_id))
        chan_start = self._chan_cursor.get(thread_id, 0)
        color_start = self._color_cursor.get(thread_id, 0)
        for attempt in range(len(channels) * len(colors)):
            chan_idx = (chan_start + attempt) % len(channels)
            color_idx = (color_start + attempt // len(channels)) % len(colors)
            bin_ = self._bins[(channels[chan_idx], colors[color_idx])]
            slot = bin_.take_slot()
            if slot is None:
                continue
            self._chan_cursor[thread_id] = (chan_idx + 1) % len(channels)
            if chan_idx + 1 >= len(channels):
                self._color_cursor[thread_id] = (color_idx + 1) % len(colors)
            self.stat_allocations += 1
            return self.address_map.compose_frame(
                bin_.channel, bin_.color, slot
            )
        raise AllocationError(
            f"out of frames for thread {thread_id} "
            f"(channels={channels}, colors={colors})"
        )

    def allocate_in(self, channel: int, color: int) -> int:
        """Allocate a frame from a specific bin (used by migration)."""
        bin_ = self._bins[(channel, color)]
        slot = bin_.take_slot()
        if slot is None:
            raise AllocationError(f"bin (ch{channel}, color{color}) exhausted")
        self.stat_allocations += 1
        return self.address_map.compose_frame(channel, color, slot)

    def free(self, frame: int) -> None:
        """Return a frame to its bin's free list."""
        channel, color, slot = self.address_map.frame_fields(frame)
        bin_ = self._bins[(channel, color)]
        if slot >= bin_.next_fresh:
            raise AllocationError(f"double free or never-allocated frame {frame}")
        bin_.free_frames.append(slot)
        self.stat_frees += 1

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def available_in(self, channel: int, color: int) -> int:
        """Free frames remaining in one bin."""
        return self._bins[(channel, color)].available()

    def colors_of_threads(self) -> Dict[int, FrozenSet[int]]:
        """Snapshot of every thread's color constraint."""
        return dict(self._thread_colors)

    def collect_metrics(self, registry) -> None:
        """Export allocation counters and partition state into a registry."""
        registry.counter(
            "repro_osmm_frame_allocations_total", "Physical frames handed out"
        ).inc(self.stat_allocations)
        registry.counter(
            "repro_osmm_frame_frees_total", "Physical frames returned"
        ).inc(self.stat_frees)
        colors = registry.gauge(
            "repro_osmm_thread_colors",
            "Bank colors each thread may allocate from, at collect",
        )
        for thread_id in sorted(self._thread_colors):
            colors.set(
                len(self._thread_colors[thread_id]), thread=str(thread_id)
            )
