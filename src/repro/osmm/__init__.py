"""OS memory management: page-coloring allocator, page tables, migration."""

from .allocator import ColorAwareAllocator
from .page_table import PageTable
from .migration import MigrationEngine, MigrationPlan

__all__ = [
    "ColorAwareAllocator",
    "PageTable",
    "MigrationEngine",
    "MigrationPlan",
]
