"""Budgeted page migration after a repartitioning.

When a partitioning policy shrinks or shifts a thread's bank-color set, the
thread's already-resident pages keep their old placement (lazy recoloring);
the migration engine then moves up to a budget of the *hottest* mis-colored
pages. The copy itself is modelled as real DRAM traffic — a configurable
number of read+write line requests per page — injected through the normal
memory path by the system builder, so migration cost shows up as genuine
bandwidth/bank contention rather than a magic constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..errors import ConfigError
from ..mapping import AddressMap
from .allocator import ColorAwareAllocator
from .page_table import PageTable


@dataclass
class MigrationPlan:
    """The outcome of one migration pass.

    ``copy_lines`` are (source_line, destination_line) physical cache-line
    pairs the system should turn into read+write traffic; ``moves`` records
    each relocation as (vpage, old_frame, new_frame) so the owner's cache
    can drop stale lines of the old frame.
    """

    thread_id: int
    moved_pages: int = 0
    copy_lines: List[tuple] = field(default_factory=list)
    moves: List[tuple] = field(default_factory=list)


class MigrationEngine:
    """Moves misplaced pages toward a thread's new color/channel sets.

    Two modes:

    * ``"budget"`` — only the ``budget_pages`` hottest misplaced pages move
      per repartitioning (strict OS-migration model; placement converges
      over many epochs).
    * ``"remap"`` (default) — *every* misplaced page is remapped at the
      epoch boundary, but copy traffic is charged only for the hottest
      ``budget_pages`` (the long cold tail is assumed migrated gradually in
      the background, amortized — the standard assumption in this paper
      family, where runs are hundreds of millions of cycles and recoloring
      cost is reported as negligible; see DESIGN.md). This mode is what
      makes scaled-down runs reach the paper's steady state.
    """

    def __init__(
        self,
        allocator: ColorAwareAllocator,
        address_map: AddressMap,
        budget_pages: int,
        lines_per_page: int,
        mode: str = "remap",
    ) -> None:
        if mode not in ("budget", "remap"):
            raise ConfigError(f"unknown migration mode {mode!r}")
        if budget_pages < 0:
            raise ConfigError("budget_pages must be >= 0")
        if lines_per_page < 0:
            raise ConfigError("lines_per_page must be >= 0")
        self.allocator = allocator
        self.address_map = address_map
        self.budget_pages = budget_pages
        self.lines_per_page = lines_per_page
        self.mode = mode
        self.stat_pages_moved = 0
        self.stat_lines_copied = 0
        self.stat_migrations = 0

    # -- tunables protocol ---------------------------------------------
    @classmethod
    def tunables(cls):
        """Migration knobs, named as the :class:`~repro.config.OSConfig`
        fields they override (the engine is built from the SystemConfig,
        so the tuner applies these to the run config, not the approach)."""
        from ..tuner.space import Tunable

        return (
            Tunable(
                "migration_budget_pages", "int", 16, low=0, high=128,
                target="osmm",
                description="pages whose copy traffic is charged per epoch",
            ),
            Tunable(
                "migration_lines_per_page", "int", 8, low=0, high=64,
                target="osmm",
                description="modelled DRAM line copies per moved page",
            ),
            Tunable(
                "migration_mode", "choice", "remap",
                choices=("remap", "budget"), target="osmm",
                description="remap all pages vs strictly budgeted moves",
            ),
        )

    def migrate(
        self,
        page_table: PageTable,
        allowed_colors: FrozenSet[int],
        allowed_channels: Optional[FrozenSet[int]] = None,
    ) -> MigrationPlan:
        """Move the hottest misplaced pages of one thread.

        A page is misplaced when its bank color is outside ``allowed_colors``
        or (when given) its channel is outside ``allowed_channels``. Pages
        are ranked by the access counts of the current epoch, so cold pages
        (which cause little interference) are left behind. The channel is
        preserved whenever it is still allowed.
        """
        plan = MigrationPlan(thread_id=page_table.thread_id)
        if self.mode == "budget" and self.budget_pages <= 0:
            return plan
        misplaced = []
        for vpage, frame in page_table.mapped_pages():
            color_ok = self.address_map.frame_bank_color(frame) in allowed_colors
            channel_ok = (
                allowed_channels is None
                or self.address_map.frame_channel(frame) in allowed_channels
            )
            if not (color_ok and channel_ok):
                misplaced.append((page_table.access_count(vpage), vpage, frame))
        if not misplaced:
            return plan
        misplaced.sort(key=lambda item: (-item[0], item[1]))
        if self.mode == "budget":
            misplaced = misplaced[: self.budget_pages]
        colors = sorted(allowed_colors)
        channels = sorted(allowed_channels) if allowed_channels else None
        for index, (_hotness, vpage, old_frame) in enumerate(misplaced):
            channel = self.address_map.frame_channel(old_frame)
            if channels is not None and channel not in channels:
                channel = channels[index % len(channels)]
            old_color = self.address_map.frame_bank_color(old_frame)
            new_color = (
                old_color
                if old_color in allowed_colors
                else colors[index % len(colors)]
            )
            new_frame = self.allocator.allocate_in(channel, new_color)
            page_table.remap(vpage, new_frame)
            self.allocator.free(old_frame)
            plan.moved_pages += 1
            plan.moves.append((vpage, old_frame, new_frame))
            if index < self.budget_pages:
                # Copy traffic is modelled for the hottest pages only; in
                # remap mode the cold tail moves "for free" (amortized).
                for line in range(self.lines_per_page):
                    src = self.address_map.line_in_frame(old_frame, line)
                    dst = self.address_map.line_in_frame(new_frame, line)
                    plan.copy_lines.append((src, dst))
        self.stat_pages_moved += plan.moved_pages
        self.stat_lines_copied += len(plan.copy_lines)
        if plan.moved_pages:
            self.stat_migrations += 1
        return plan

    # ------------------------------------------------------------------
    def collect_metrics(self, registry) -> None:
        """Export migration counters into a metrics registry."""
        registry.counter(
            "repro_osmm_pages_migrated_total",
            "Pages relocated by the migration engine",
        ).inc(self.stat_pages_moved, mode=self.mode)
        registry.counter(
            "repro_osmm_copy_lines_total",
            "Cache lines whose copy traffic was charged to DRAM",
        ).inc(self.stat_lines_copied, mode=self.mode)
        registry.counter(
            "repro_osmm_migration_passes_total",
            "Migration passes that moved at least one page",
        ).inc(self.stat_migrations, mode=self.mode)
