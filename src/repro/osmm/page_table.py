"""Per-thread page table with first-touch allocation and hotness tracking.

Translation happens on every memory access, so this is deliberately a thin
dict wrapper. Access counts per page feed the migration engine's choice of
which mis-colored pages are worth moving.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import AllocationError
from ..mapping import AddressMap
from .allocator import ColorAwareAllocator


class PageTable:
    """Virtual-to-physical mapping for one thread."""

    def __init__(
        self,
        thread_id: int,
        allocator: ColorAwareAllocator,
        address_map: AddressMap,
    ) -> None:
        self.thread_id = thread_id
        self.allocator = allocator
        self.address_map = address_map
        self._vpage_to_frame: Dict[int, int] = {}
        self._frame_to_vpage: Dict[int, int] = {}
        self._access_counts: Dict[int, int] = {}
        self._page_line_bits = address_map.page_line_bits
        self._offset_mask = (1 << self._page_line_bits) - 1
        self.stat_faults = 0

    # ------------------------------------------------------------------
    def translate_line(self, virtual_line: int) -> int:
        """Translate a virtual cache-line address, faulting in the page.

        Returns the physical cache-line address. First touch allocates a
        frame within the thread's current color/channel constraints.
        """
        bits = self._page_line_bits
        vpage = virtual_line >> bits
        frame = self._vpage_to_frame.get(vpage)
        if frame is None:
            frame = self.allocator.allocate(self.thread_id)
            self._vpage_to_frame[vpage] = frame
            self._frame_to_vpage[frame] = vpage
            self.stat_faults += 1
        counts = self._access_counts
        counts[vpage] = counts.get(vpage, 0) + 1
        # Inline of AddressMap.line_in_frame: the masked offset is in range
        # by construction, so the per-access bounds check adds nothing.
        return (frame << bits) | (virtual_line & self._offset_mask)

    # ------------------------------------------------------------------
    def remap(self, vpage: int, new_frame: int) -> int:
        """Point ``vpage`` at ``new_frame``; returns the old frame.

        The caller owns freeing the old frame (the migration engine does it
        after modelling the copy traffic).
        """
        old_frame = self._vpage_to_frame.get(vpage)
        if old_frame is None:
            raise AllocationError(
                f"thread {self.thread_id} has no mapping for vpage {vpage}"
            )
        if new_frame in self._frame_to_vpage:
            raise AllocationError(f"frame {new_frame} already mapped")
        del self._frame_to_vpage[old_frame]
        self._vpage_to_frame[vpage] = new_frame
        self._frame_to_vpage[new_frame] = vpage
        return old_frame

    def mapped_pages(self) -> Iterator[Tuple[int, int]]:
        """All (vpage, frame) pairs."""
        return iter(self._vpage_to_frame.items())

    def frame_of(self, vpage: int) -> int:
        """Frame currently backing ``vpage``."""
        return self._vpage_to_frame[vpage]

    def access_count(self, vpage: int) -> int:
        """Accesses recorded for ``vpage`` since the last reset."""
        return self._access_counts.get(vpage, 0)

    def reset_access_counts(self) -> None:
        """Start a fresh hotness window (called at each epoch boundary)."""
        self._access_counts.clear()

    @property
    def resident_pages(self) -> int:
        """Number of mapped pages."""
        return len(self._vpage_to_frame)
