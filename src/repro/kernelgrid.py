"""The kernel-equivalence differential grid.

One place defines the (approach x scheduler x page-policy x validate) grid
that both the golden-fixture generator (``scripts/gen_kernel_golden.py``)
and the differential test (``tests/test_kernel_equivalence.py``) run. A
grid run is a bare :class:`~repro.sim.system.System` — no Runner, no
caches — so the captured document is exactly what one simulation produces:
per-thread results, command/refresh totals, engine event counts, and the
full metrics-registry snapshot.

Every approach in the registry exercises its scheduler through the
controller hot loop; the closed-page rows exercise the stale-row precharge
path; the ``validate`` rows replay each channel's full command log through
the strict protocol validator on top of the comparison.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from .config import SystemConfig
from .core.integration import get_approach
from .sim.system import System
from .traces.source import DefaultTraceSource
from .workloads import resolve_mix

#: (run-name, approach, page_policy, validate)
GridSpec = Tuple[str, str, str, bool]

HORIZON = 60_000
SEED = 1
TARGET_INSTS = 4_000_000
MIX = "M4"

#: Every registered approach (all six schedulers, all policies) on the
#: default open-page config, plus closed-page and validator-on rows.
GRID: List[GridSpec] = [
    ("shared-fcfs/open", "shared-fcfs", "open", False),
    ("shared-frfcfs/open", "shared-frfcfs", "open", False),
    ("parbs/open", "parbs", "open", False),
    ("atlas/open", "atlas", "open", False),
    ("tcm/open", "tcm", "open", False),
    ("bliss/open", "bliss", "open", False),
    ("ebp/open", "ebp", "open", False),
    ("dbp/open", "dbp", "open", False),
    ("mcp/open", "mcp", "open", False),
    ("ebp-tcm/open", "ebp-tcm", "open", False),
    ("dbp-tcm/open", "dbp-tcm", "open", False),
    ("dbp+mcp/open", "dbp+mcp", "open", False),
    ("shared-frfcfs/closed", "shared-frfcfs", "closed", False),
    ("parbs/closed", "parbs", "closed", False),
    ("dbp-tcm/closed", "dbp-tcm", "closed", False),
    ("dbp-tcm/open+validate", "dbp-tcm", "open", True),
    ("shared-frfcfs/closed+validate", "shared-frfcfs", "closed", True),
]

_trace_cache: Dict[tuple, object] = {}


def _traces(apps, seed: int, target_insts: int):
    source = DefaultTraceSource()
    out = []
    for app in apps:
        key = (app, seed, target_insts)
        trace = _trace_cache.get(key)
        if trace is None:
            trace = source.trace_for(app, seed, target_insts)
            _trace_cache[key] = trace
        out.append(trace)
    return out


def build_grid_system(
    spec: GridSpec,
    kernel: Optional[str] = None,
    horizon: int = HORIZON,
) -> System:
    """A fresh, unrun :class:`System` for one grid entry."""
    _name, approach_name, page_policy, validate = spec
    approach = get_approach(approach_name)
    config = SystemConfig().with_scheduler(
        approach.scheduler, **approach.scheduler_params
    )
    if page_policy != config.controller.page_policy:
        config = replace(
            config,
            controller=replace(config.controller, page_policy=page_policy),
        )
    traces = _traces(resolve_mix(MIX).apps, SEED, TARGET_INSTS)
    kwargs: Dict[str, object] = {}
    if kernel is not None:
        kwargs["kernel"] = kernel
    return System(
        config,
        traces,
        horizon=horizon,
        policy=approach.make_policy(),
        validate=validate,
        **kwargs,
    )


def run_grid_spec(
    spec: GridSpec,
    kernel: Optional[str] = None,
    horizon: int = HORIZON,
) -> Dict[str, object]:
    """Run one grid entry; returns a JSON-comparable result document."""
    system = build_grid_system(spec, kernel=kernel, horizon=horizon)
    result = system.run()
    return grid_doc(system, result)


def run_grid_spec_checkpointed(
    spec: GridSpec,
    kernel: Optional[str] = None,
    horizon: int = HORIZON,
    interrupt_at: Optional[int] = None,
) -> Dict[str, object]:
    """Run one grid entry *through* a mid-flight checkpoint round trip.

    The run is killed at its first safepoint (default: a third of the
    horizon) right after serializing a checkpoint; a brand-new System is
    rebuilt from those bytes and resumed to completion. The returned
    document must equal :func:`run_grid_spec`'s — the differential test
    compares both against the committed golden fixture.
    """
    every = interrupt_at if interrupt_at is not None else max(1, horizon // 3)

    class _Interrupted(Exception):
        pass

    captured: Dict[str, bytes] = {}

    def _snap_and_die(system: System, _cycle: int) -> None:
        captured["blob"] = system.checkpoint()
        raise _Interrupted

    first = build_grid_system(spec, kernel=kernel, horizon=horizon)
    try:
        first.run(safepoint_every=every, on_safepoint=_snap_and_die)
    except _Interrupted:
        pass
    if "blob" not in captured:
        # Horizon shorter than one safepoint step: nothing to interrupt.
        raise RuntimeError(
            f"no safepoint fired before horizon {horizon} (every={every})"
        )
    restored = System.restore(captured["blob"])
    result = restored.resume()
    return grid_doc(restored, result)


def grid_doc(system: System, result) -> Dict[str, object]:
    """The JSON-comparable document for one finished grid run."""
    snapshot = system.metrics_registry().snapshot()
    # repro_kernel_* flight-recorder counters are the one sanctioned
    # fast-vs-reference divergence (reference leaves them at zero);
    # strip them so the differential document compares only
    # simulation-visible state against the committed golden fixture.
    snapshot["metrics"] = [
        metric
        for metric in snapshot["metrics"]
        if not metric["name"].startswith("repro_kernel_")
    ]
    return {
        "threads": {
            str(tid): {
                "app": tr.app,
                "ipc": tr.ipc,
                "retired_insts": tr.retired_insts,
                "reads": tr.reads,
                "writes": tr.writes,
                "llc_miss_rate": tr.llc_miss_rate,
                "row_hit_rate": tr.row_hit_rate,
                "mean_read_latency": tr.mean_read_latency,
            }
            for tid, tr in sorted(result.threads.items())
        },
        "total_commands": result.total_commands,
        "total_refreshes": result.total_refreshes,
        "pages_migrated": result.pages_migrated,
        "engine_events": result.engine_events,
        "bus_utilization": {
            str(ch): value
            for ch, value in sorted(result.bus_utilization.items())
        },
        "metrics": snapshot,
    }


def golden_document(kernel: Optional[str] = None) -> Dict[str, object]:
    """The full grid as one fixture document."""
    return {
        "mix": MIX,
        "horizon": HORIZON,
        "seed": SEED,
        "target_insts": TARGET_INSTS,
        "runs": {spec[0]: run_grid_spec(spec, kernel=kernel) for spec in GRID},
    }
