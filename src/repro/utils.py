"""Small shared helpers: integer math, statistics, and deterministic RNG.

Nothing here knows about DRAM or scheduling; these are the generic utilities
the rest of the package builds on.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Sequence

from .errors import ConfigError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises :class:`ConfigError` for non powers of two, because every caller
    in this package uses it to size address bit-fields.
    """
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ConfigError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ConfigError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for summarizing normalized performance numbers; an empty input is a
    caller bug, so it raises.
    """
    items = list(values)
    if not items:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; raises on empty input like :func:`geometric_mean`."""
    items = list(values)
    if not items:
        raise ValueError("mean of an empty sequence")
    return sum(items) / len(items)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values."""
    items = list(values)
    if not items:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(items) / sum(1.0 / v for v in items)


def largest_remainder_shares(weights: Sequence[float], total: int) -> List[int]:
    """Split ``total`` integer units proportionally to ``weights``.

    Uses the largest-remainder method so the shares always sum exactly to
    ``total``. Zero weights receive zero units. Ties are broken by index for
    determinism.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    weight_sum = sum(weights)
    if weight_sum == 0 or total == 0:
        return [0] * len(weights)
    exact = [total * w / weight_sum for w in weights]
    floors = [int(math.floor(x)) for x in exact]
    leftover = total - sum(floors)
    remainders = sorted(
        range(len(weights)), key=lambda i: (-(exact[i] - floors[i]), i)
    )
    for i in remainders[:leftover]:
        floors[i] += 1
    return floors


def make_rng(seed: int, *stream: object) -> random.Random:
    """Create a deterministic RNG for a named stream.

    ``stream`` components (thread ids, phase names, ...) are folded into the
    seed so that independent parts of the simulator draw from independent,
    reproducible streams regardless of call ordering.
    """
    mixed = seed & 0xFFFFFFFF
    for part in stream:
        for ch in repr(part):
            mixed = (mixed * 1000003 + ord(ch)) & 0xFFFFFFFFFFFFFFFF
    return random.Random(mixed)
