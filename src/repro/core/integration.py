"""Named approaches: partitioning policy x memory scheduler combinations.

The paper's central observation is that bank partitioning and memory
scheduling are orthogonal and compose. This module names every combination
the evaluation uses — most importantly ``dbp-tcm`` — so experiments and
examples can request them by string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..baselines.base import PartitionPolicy, make_policy
from ..errors import ConfigError


@dataclass(frozen=True)
class Approach:
    """A (partitioning, scheduling) pair with display metadata."""

    name: str
    policy: str  # partition policy registry name
    scheduler: str  # scheduler registry name
    policy_params: Dict[str, object] = field(default_factory=dict)
    scheduler_params: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    def make_policy(self) -> PartitionPolicy:
        """Instantiate this approach's partitioning policy."""
        return make_policy(self.policy, **self.policy_params)


APPROACHES: Dict[str, Approach] = {
    approach.name: approach
    for approach in (
        Approach(
            "shared-fcfs",
            "shared",
            "fcfs",
            description="No partitioning, strict FCFS (weakest baseline)",
        ),
        Approach(
            "shared-frfcfs",
            "shared",
            "frfcfs",
            description="No partitioning, FR-FCFS (the unmanaged baseline)",
        ),
        Approach(
            "parbs",
            "shared",
            "parbs",
            description="No partitioning, PAR-BS batch scheduling",
        ),
        Approach(
            "atlas",
            "shared",
            "atlas",
            description="No partitioning, ATLAS least-attained-service",
        ),
        Approach(
            "tcm",
            "shared",
            "tcm",
            description="No partitioning, Thread Cluster Memory scheduling",
        ),
        Approach(
            "bliss",
            "shared",
            "bliss",
            description="No partitioning, BLISS blacklisting scheduler",
        ),
        Approach(
            "ebp",
            "ebp",
            "frfcfs",
            description="Equal static bank partitioning over FR-FCFS",
        ),
        Approach(
            "dbp",
            "dbp",
            "frfcfs",
            description="Dynamic Bank Partitioning over FR-FCFS (ours)",
        ),
        Approach(
            "mcp",
            "mcp",
            "frfcfs",
            description="Memory Channel Partitioning over FR-FCFS",
        ),
        Approach(
            "ebp-tcm",
            "ebp",
            "tcm",
            description="Equal bank partitioning combined with TCM (ablation)",
        ),
        Approach(
            "dbp-tcm",
            "dbp",
            "tcm",
            description="Dynamic Bank Partitioning combined with TCM (ours)",
        ),
        Approach(
            "dbp+mcp",
            "dbp+mcp",
            "frfcfs",
            description="Combined channel + bank partitioning (extension)",
        ),
    )
}


def get_approach(name: str) -> Approach:
    """Look up an approach by name.

    Besides the registered names, **parameterized** names of the form
    ``base@key=value,key2=value2`` resolve to a derived approach whose
    policy/scheduler params are overridden through the tunables registry
    (:mod:`repro.tuner.space`) — e.g. ``dbp@epoch_cycles=20000``. The
    derivation is a pure function of the string, so campaign workers,
    store keys, and the results index all agree on what a tuned point
    means without any side-channel registration.
    """
    base_name, sep, param_text = name.partition("@")
    try:
        base = APPROACHES[base_name]
    except KeyError:
        known = ", ".join(sorted(APPROACHES))
        raise ConfigError(
            f"unknown approach {base_name!r}; known: {known} "
            "(append @key=value,... to tune a registered approach)"
        ) from None
    if not sep:
        return base
    from ..tuner.space import derive_approach

    return derive_approach(base, param_text)
