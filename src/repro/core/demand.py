"""Bank-demand estimation from runtime profiles.

This is the decision half of DBP's key principle: "profile threads' memory
characteristics at run-time and estimate their demands for bank amount". A
thread's useful bank count is driven by its bank-level parallelism — giving
a thread more banks than it has concurrent requests buys nothing, while
giving it fewer serializes its misses. Two corrections apply:

* memory-non-intensive threads (MPKI below a threshold) are not worth
  dedicating banks to at all — they are pooled (the classification);
* streaming threads with very high row-buffer locality keep rows open and
  drain through few banks, so their raw BLP overstates their need.

The estimator is deliberately configurable so the ablation bench (F9) can
switch off each ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError
from ..memctrl.schedulers.base import ProfileSnapshot
from ..utils import ceil_div


@dataclass(frozen=True)
class DemandConfig:
    """Knobs of the bank-demand estimator.

    ``mode`` selects the estimator variant:

    * ``"full"``  — BLP-proportional with the high-RBH deduction (DBP).
    * ``"blp"``   — BLP-proportional only (no RBH correction).
    * ``"mpki"``  — MPKI-proportional (a strawman the ablation disproves).
    """

    low_mpki_threshold: float = 1.0
    blp_scale: float = 1.5
    high_rbh_threshold: float = 0.85
    max_banks_per_thread: int = 16
    mode: str = "full"

    def __post_init__(self) -> None:
        if self.low_mpki_threshold < 0:
            raise ConfigError("low_mpki_threshold must be >= 0")
        if self.blp_scale <= 0:
            raise ConfigError("blp_scale must be positive")
        if not 0.0 < self.high_rbh_threshold <= 1.0:
            raise ConfigError("high_rbh_threshold must be in (0, 1]")
        if self.max_banks_per_thread < 1:
            raise ConfigError("max_banks_per_thread must be >= 1")
        if self.mode not in ("full", "blp", "mpki"):
            raise ConfigError("mode must be 'full', 'blp', or 'mpki'")


@dataclass(frozen=True)
class ThreadDemand:
    """Estimated bank demand of one thread for the next epoch."""

    thread_id: int
    intensive: bool
    banks: int  # meaningful only when intensive


class BankDemandEstimator:
    """Estimates per-thread bank demands from a profile snapshot."""

    def __init__(self, config: DemandConfig) -> None:
        self.config = config

    def classify_intensive(self, mpki: float) -> bool:
        """True when a thread is memory-intensive enough to own banks."""
        return mpki >= self.config.low_mpki_threshold

    def estimate(self, snapshot: ProfileSnapshot, num_threads: int) -> Dict[int, ThreadDemand]:
        """Demand for every thread, keyed by thread id."""
        demands: Dict[int, ThreadDemand] = {}
        for thread_id in range(num_threads):
            profile = snapshot.profile(thread_id)
            intensive = self.classify_intensive(profile.mpki)
            if not intensive:
                demands[thread_id] = ThreadDemand(thread_id, False, 0)
                continue
            banks = self._estimate_banks(profile)
            demands[thread_id] = ThreadDemand(thread_id, True, banks)
        return demands

    def _estimate_banks(self, profile) -> int:
        config = self.config
        if config.mode == "mpki":
            # Strawman: scale by intensity. Over-serves streaming threads.
            raw = ceil_div(int(profile.mpki), 10) + 1
        else:
            raw = max(1, int(profile.blp * config.blp_scale + 0.999))
            if config.mode == "full" and profile.rbh > config.high_rbh_threshold:
                # Streaming: rows stay open, so the headroom factor is
                # wasted — but measured BLP itself is a real floor (the
                # thread does keep that many banks busy).
                raw = max(1, raw // 2, int(profile.blp + 0.999))
        return min(raw, config.max_banks_per_thread)
