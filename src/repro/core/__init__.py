"""The paper's contribution: Dynamic Bank Partitioning.

* :class:`~repro.core.profiler.ThreadProfiler` — runtime measurement of each
  thread's MPKI, row-buffer hit rate, and bank-level parallelism.
* :class:`~repro.core.demand.BankDemandEstimator` — turns a profile into an
  estimated bank demand per thread.
* :class:`~repro.core.dbp.DynamicBankPartitioning` — the epoch-based policy
  that reallocates bank colors to match demand.
* :mod:`~repro.core.integration` — named "approaches" combining partitioning
  policies with memory schedulers (DBP-TCM and every baseline combination
  the evaluation compares).
"""

from .profiler import ThreadProfiler
from .demand import BankDemandEstimator, DemandConfig
from .dbp import DynamicBankPartitioning, DBPConfig
from .integration import APPROACHES, Approach, get_approach
from .combined import CombinedPartitioning

__all__ = [
    "ThreadProfiler",
    "BankDemandEstimator",
    "DemandConfig",
    "DynamicBankPartitioning",
    "DBPConfig",
    "APPROACHES",
    "Approach",
    "get_approach",
    "CombinedPartitioning",
]
