"""Runtime per-thread memory-behaviour profiling.

This is the measurement half of DBP's "profile threads' memory
characteristics at run-time": the profiler listens to every channel
controller and maintains, per thread and per epoch:

* request count (→ MPKI, using retirement counters from the cores),
* row-buffer hits among served requests (→ RBH),
* a time-weighted integral of how many banks hold outstanding requests
  while the thread has any outstanding request at all (→ BLP), and
* data-bus service cycles (→ bandwidth share).

The same snapshots feed both DBP's demand estimation and the adaptive
schedulers (TCM clustering/niceness, ATLAS ranks), because the paper's
policies deliberately consume the same cheap hardware counters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..memctrl.request import Request
from ..memctrl.schedulers.base import ProfileSnapshot, ThreadProfile


class _ThreadState:
    __slots__ = (
        "requests",
        "served",
        "row_hits",
        "service_cycles",
        "outstanding_per_bank",
        "active_banks",
        "blp_integral",
        "active_time",
        "last_change",
        "last_retired",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.served = 0
        self.row_hits = 0
        self.service_cycles = 0
        self.outstanding_per_bank: Dict[tuple, int] = {}
        self.active_banks = 0
        self.blp_integral = 0
        self.active_time = 0
        self.last_change = 0
        self.last_retired = 0


class ThreadProfiler:
    """Controller listener producing per-epoch :class:`ProfileSnapshot`."""

    def __init__(
        self,
        num_threads: int,
        burst_cycles: int,
        retired_insts_of: Callable[[int], int],
    ) -> None:
        self.num_threads = num_threads
        self.burst_cycles = burst_cycles
        self.retired_insts_of = retired_insts_of
        self._threads: Dict[int, _ThreadState] = {
            t: _ThreadState() for t in range(num_threads)
        }
        self._epoch_start = 0

    # ------------------------------------------------------------------
    # Controller listener interface.
    # ------------------------------------------------------------------
    def on_arrival(self, request: Request, now: int) -> None:
        if request.is_migration:
            return
        state = self._threads[request.thread_id]
        state.requests += 1
        self._flush_blp(state, now)
        bank = request.bank_key
        count = state.outstanding_per_bank.get(bank, 0)
        state.outstanding_per_bank[bank] = count + 1
        if count == 0:
            state.active_banks += 1

    def on_cas(
        self,
        request: Request,
        now: int,
        row_hit: bool,
        data_end: Optional[int] = None,
    ) -> None:
        if request.is_migration:
            return
        state = self._threads[request.thread_id]
        state.served += 1
        if row_hit:
            state.row_hits += 1
        state.service_cycles += self.burst_cycles
        self._flush_blp(state, now)
        bank = request.bank_key
        count = state.outstanding_per_bank.get(bank, 0) - 1
        if count <= 0:
            state.outstanding_per_bank.pop(bank, None)
            state.active_banks -= 1
        else:
            state.outstanding_per_bank[bank] = count

    def _flush_blp(self, state: _ThreadState, now: int) -> None:
        if now > state.last_change:
            active = state.active_banks
            if active > 0:
                elapsed = now - state.last_change
                state.blp_integral += active * elapsed
                state.active_time += elapsed
            state.last_change = now

    # ------------------------------------------------------------------
    # Epoch boundary.
    # ------------------------------------------------------------------
    def snapshot(self, now: int) -> ProfileSnapshot:
        """Close the current epoch and return its per-thread profiles.

        Epoch counters reset; outstanding-request state carries over so BLP
        accounting stays exact across the boundary.
        """
        elapsed = max(1, now - self._epoch_start)
        profiles: Dict[int, ThreadProfile] = {}
        for thread_id, state in self._threads.items():
            self._flush_blp(state, now)
            retired_now = self.retired_insts_of(thread_id)
            insts = max(0, retired_now - state.last_retired)
            mpki = 1000.0 * state.requests / insts if insts else 0.0
            rbh = state.row_hits / state.served if state.served else 0.0
            blp = (
                state.blp_integral / state.active_time
                if state.active_time
                else 0.0
            )
            bandwidth = state.service_cycles / elapsed
            profiles[thread_id] = ThreadProfile(
                thread_id=thread_id,
                mpki=mpki,
                rbh=rbh,
                blp=blp,
                bandwidth=bandwidth,
                requests=state.requests,
            )
            state.requests = 0
            state.served = 0
            state.row_hits = 0
            state.service_cycles = 0
            state.blp_integral = 0
            state.active_time = 0
            state.last_retired = retired_now
        self._epoch_start = now
        return ProfileSnapshot(cycle=now, threads=profiles)
