"""Combined channel + bank partitioning (extension).

The paper treats bank partitioning and channel partitioning as competing
mechanisms; on this substrate they are orthogonal allocator constraints,
so they also *compose*: MCP-style channel assignment isolates thread
groups across channels, and DBP-style bank allocation isolates threads
within each channel. This policy applies both every epoch — the "vertical
partitioning" direction the follow-on literature explores.
"""

from __future__ import annotations

from .dbp import DBPConfig, DynamicBankPartitioning
from ..memctrl.schedulers.base import ProfileSnapshot
from ..baselines.base import PartitionContext, PartitionPolicy, register_policy
from ..baselines.mcp import MCPConfig, MemoryChannelPartitioning


@register_policy
class CombinedPartitioning(PartitionPolicy):
    """DBP bank allocation on top of MCP channel assignment."""

    name = "dbp+mcp"

    def __init__(
        self,
        dbp_config: DBPConfig = DBPConfig(),
        mcp_config: MCPConfig = MCPConfig(),
    ) -> None:
        self.bank_policy = DynamicBankPartitioning(dbp_config)
        self.channel_policy = MemoryChannelPartitioning(mcp_config)
        self.epoch_cycles = min(
            dbp_config.epoch_cycles, mcp_config.epoch_cycles
        )

    def initialize(self, context: PartitionContext) -> None:
        self.channel_policy.initialize(context)
        self.bank_policy.initialize(context)

    def on_epoch(self, snapshot: ProfileSnapshot, context: PartitionContext) -> None:
        # Channels first (coarse isolation), then banks within them.
        self.channel_policy.on_epoch(snapshot, context)
        self.bank_policy.on_epoch(snapshot, context)

    @property
    def stat_repartitions(self) -> int:
        """Repartitioning count (bank dimension; the dimensions tick together)."""
        return self.bank_policy.stat_repartitions

    # Telemetry reads these duck-typed fields off any policy; delegate to
    # the bank dimension, which owns the per-thread color decisions.
    @property
    def stat_pages_migrated(self) -> int:
        return self.bank_policy.stat_pages_migrated

    @property
    def last_allocation(self):
        return self.bank_policy.last_allocation

    @property
    def last_demands(self):
        return self.bank_policy.last_demands