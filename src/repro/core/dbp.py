"""Dynamic Bank Partitioning — the paper's primary contribution.

Each epoch DBP:

1. reads the shared runtime profile (MPKI / RBH / BLP per thread),
2. estimates each thread's bank demand (:mod:`repro.core.demand`),
3. pools memory-non-intensive threads onto a small shared color set (they
   rarely conflict, and dedicating banks to them wastes bank-level
   parallelism the intensive threads could use),
4. divides the remaining colors among intensive threads proportionally to
   demand (largest-remainder, at least one color each), preferring each
   thread's previously-owned colors to minimize recoloring churn, and
5. applies the new constraints, migrating a budget of hot misplaced pages.

Before the first profile exists, DBP starts from the equal split (the same
cold-start the paper's EBP baseline uses), so the first epoch is never
worse than EBP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..baselines.base import PartitionContext, PartitionPolicy, register_policy
from ..baselines.equal import EqualBankPartitioning
from ..errors import ConfigError
from ..memctrl.schedulers.base import ProfileSnapshot
from ..utils import largest_remainder_shares
from .demand import BankDemandEstimator, DemandConfig


@dataclass(frozen=True)
class DBPConfig:
    """All DBP knobs in one place (swept by the sensitivity benches)."""

    epoch_cycles: int = 25_000
    demand: DemandConfig = field(default_factory=DemandConfig)
    #: Colors reserved for the non-intensive pool when it exists, at minimum.
    min_pool_colors: int = 1
    #: If False, non-intensive threads keep dedicated colors (ablation).
    pool_non_intensive: bool = True
    #: EWMA weight of the previous epoch's demand (0 = no smoothing). Damps
    #: allocation flapping when a thread's measured BLP is noisy.
    demand_smoothing: float = 0.5
    #: Keep the current allocation when no thread's target share differs
    #: from its current share by more than the hysteresis band.
    #: Repartitioning has a real cost (page migration), so marginal
    #: rebalances are skipped. The band is
    #: ``max(hysteresis_colors, total_colors * hysteresis_fraction)`` —
    #: one color out of 16 is marginal in a way one color out of 8 is not.
    hysteresis_colors: int = 1
    hysteresis_fraction: float = 0.125

    def __post_init__(self) -> None:
        if self.epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be >= 1")
        if self.min_pool_colors < 1:
            raise ConfigError("min_pool_colors must be >= 1")
        if not 0.0 <= self.demand_smoothing < 1.0:
            raise ConfigError("demand_smoothing must be in [0, 1)")
        if self.hysteresis_colors < 0:
            raise ConfigError("hysteresis_colors must be >= 0")
        if self.hysteresis_fraction < 0:
            raise ConfigError("hysteresis_fraction must be >= 0")


@register_policy
class DynamicBankPartitioning(PartitionPolicy):
    """Demand-driven bank-color allocation, repartitioned every epoch."""

    name = "dbp"

    def __init__(self, config: DBPConfig = DBPConfig()) -> None:
        self.config = config
        self.epoch_cycles = config.epoch_cycles
        self.estimator = BankDemandEstimator(config.demand)
        self.last_allocation: Dict[int, List[int]] = {}
        #: Smoothed demand behind the latest allocation, JSON-friendly:
        #: {thread_id: {"intensive": bool, "banks": int}} (telemetry reads it).
        self.last_demands: Dict[int, Dict[str, object]] = {}
        self._smoothed_demand: Dict[int, float] = {}
        self.stat_repartitions = 0
        self.stat_pages_migrated = 0

    # -- tunables protocol ---------------------------------------------
    @classmethod
    def tunables(cls):
        """The DBP knobs a search may move (paper defaults, sane bounds)."""
        from ..tuner.space import Tunable

        return (
            Tunable(
                "epoch_cycles", "int", 25_000, low=5_000, high=200_000,
                log=True, description="repartitioning period (CPU cycles)",
            ),
            Tunable(
                "demand_smoothing", "float", 0.5, low=0.0, high=0.95,
                description="EWMA weight of the previous epoch's demand",
            ),
            Tunable(
                "hysteresis_colors", "int", 1, low=0, high=4,
                description="minimum per-thread color delta worth migrating",
            ),
            Tunable(
                "hysteresis_fraction", "float", 0.125, low=0.0, high=0.5,
                description="hysteresis band as a fraction of total colors",
            ),
            Tunable(
                "min_pool_colors", "int", 1, low=1, high=4,
                description="colors reserved for the non-intensive pool",
            ),
            Tunable(
                "demand.low_mpki_threshold", "float", 1.0, low=0.1,
                high=10.0, log=True,
                description="MPKI below which a thread is non-intensive",
            ),
            Tunable(
                "demand.blp_scale", "float", 1.5, low=0.5, high=4.0,
                description="banks demanded per unit of measured BLP",
            ),
            Tunable(
                "demand.high_rbh_threshold", "float", 0.85, low=0.5,
                high=1.0,
                description="row-buffer hit rate that deducts bank demand",
            ),
        )

    @classmethod
    def from_tunables(cls, values: Dict[str, object]) -> Dict[str, object]:
        """Constructor params from a flat tunable point.

        ``demand.*`` names land on the nested :class:`DemandConfig`;
        everything else on :class:`DBPConfig`. Unnamed knobs keep their
        paper defaults, and both dataclasses re-validate on construction.
        """
        demand_kwargs: Dict[str, object] = {}
        config_kwargs: Dict[str, object] = {}
        for name, value in values.items():
            if name.startswith("demand."):
                demand_kwargs[name.split(".", 1)[1]] = value
            else:
                config_kwargs[name] = value
        if demand_kwargs:
            config_kwargs["demand"] = DemandConfig(**demand_kwargs)
        return {"config": DBPConfig(**config_kwargs)}

    # ------------------------------------------------------------------
    def initialize(self, context: PartitionContext) -> None:
        assignment = EqualBankPartitioning.compute_assignment(
            context.num_threads, context.total_bank_colors
        )
        for thread_id, colors in assignment.items():
            context.apply_bank_colors(thread_id, colors, migrate=False)
        self.last_allocation = assignment

    def on_epoch(self, snapshot: ProfileSnapshot, context: PartitionContext) -> None:
        allocation = self.compute_allocation(snapshot, context)
        if self._within_hysteresis(allocation, context.total_bank_colors):
            self.stat_repartitions += 1
            return
        for thread_id, colors in allocation.items():
            if set(colors) != set(self.last_allocation.get(thread_id, [])):
                self.stat_pages_migrated += context.apply_bank_colors(
                    thread_id, colors
                )
        self.last_allocation = allocation
        self.stat_repartitions += 1

    # ------------------------------------------------------------------
    def compute_allocation(
        self, snapshot: ProfileSnapshot, context: PartitionContext
    ) -> Dict[int, List[int]]:
        """Pure function from profiles to a color set per thread."""
        num_threads = context.num_threads
        total_colors = context.total_bank_colors
        demands = self._smooth(self.estimator.estimate(snapshot, num_threads))
        self.last_demands = {
            d.thread_id: {"intensive": d.intensive, "banks": d.banks}
            for d in demands.values()
        }
        intensive = [d for d in demands.values() if d.intensive]
        pooled = [d for d in demands.values() if not d.intensive]
        if not self.config.pool_non_intensive:
            # Ablation: no pooling — every thread owns dedicated colors
            # (non-intensive ones with an effective demand of one bank).
            intensive = list(demands.values())
            pooled = []
        if not intensive:
            return {t: list(range(total_colors)) for t in range(num_threads)}
        shares = self._color_shares(intensive, pooled, total_colors)
        return self._assign_colors(intensive, pooled, shares, total_colors)

    def _within_hysteresis(
        self, allocation: Dict[int, List[int]], total_colors: int
    ) -> bool:
        """True when the new targets are too close to the current split
        to justify paying the migration cost."""
        if not self.last_allocation:
            return False
        band = max(
            self.config.hysteresis_colors,
            int(total_colors * self.config.hysteresis_fraction),
        )
        for thread_id, colors in allocation.items():
            current = self.last_allocation.get(thread_id)
            if current is None:
                return False
            if abs(len(colors) - len(current)) > band:
                return False
        return True

    def _smooth(self, demands: Dict) -> Dict:
        """EWMA-smooth bank demands across epochs to damp flapping."""
        alpha = self.config.demand_smoothing
        if alpha == 0.0:
            return demands
        from .demand import ThreadDemand

        smoothed: Dict[int, ThreadDemand] = {}
        for thread_id, demand in demands.items():
            if not demand.intensive:
                self._smoothed_demand.pop(thread_id, None)
                smoothed[thread_id] = demand
                continue
            previous = self._smoothed_demand.get(thread_id, float(demand.banks))
            value = alpha * previous + (1.0 - alpha) * demand.banks
            self._smoothed_demand[thread_id] = value
            smoothed[thread_id] = ThreadDemand(
                thread_id, True, max(1, round(value))
            )
        return smoothed

    def _color_shares(
        self, intensive: List, pooled: List, total_colors: int
    ) -> Dict[int, int]:
        """Integer color counts per intensive thread (plus the pool)."""
        pool_size = 0
        if pooled:
            total_demand = sum(max(1, d.banks) for d in intensive)
            leftover = total_colors - total_demand
            max_pool = total_colors - len(intensive)
            pool_size = max(self.config.min_pool_colors, leftover)
            pool_size = min(pool_size, max_pool)
        colors_for_intensive = total_colors - pool_size
        weights = [max(1, d.banks) for d in intensive]
        shares = largest_remainder_shares(weights, colors_for_intensive)
        # Every intensive thread needs at least one color.
        for index in range(len(shares)):
            while shares[index] == 0:
                donor = max(range(len(shares)), key=lambda i: shares[i])
                if shares[donor] <= 1:
                    raise ConfigError(
                        "not enough bank colors for one per intensive thread"
                    )
                shares[donor] -= 1
                shares[index] += 1
        result = {d.thread_id: s for d, s in zip(intensive, shares)}
        result["pool"] = pool_size
        return result

    def _assign_colors(
        self,
        intensive: List,
        pooled: List,
        shares: Dict,
        total_colors: int,
    ) -> Dict[int, List[int]]:
        """Map share counts to concrete colors, minimizing recoloring."""
        unassigned: Set[int] = set(range(total_colors))
        allocation: Dict[int, List[int]] = {}
        # Largest shares pick first so big partitions keep their old colors.
        order = sorted(
            intensive,
            key=lambda d: (-shares[d.thread_id], d.thread_id),
        )
        for demand in order:
            want = shares[demand.thread_id]
            previous = [
                c
                for c in self.last_allocation.get(demand.thread_id, [])
                if c in unassigned
            ]
            chosen = previous[:want]
            if len(chosen) < want:
                fresh = sorted(unassigned - set(chosen))
                chosen.extend(fresh[: want - len(chosen)])
            unassigned.difference_update(chosen)
            allocation[demand.thread_id] = sorted(chosen)
        pool_colors = sorted(unassigned)
        if pooled:
            if not pool_colors:
                raise ConfigError("pool ended up with zero colors")
            for demand in pooled:
                allocation[demand.thread_id] = pool_colors
        elif pool_colors:
            # No pool: hand leftovers to the highest-demand thread.
            top = order[0].thread_id
            allocation[top] = sorted(allocation[top] + pool_colors)
        return allocation
