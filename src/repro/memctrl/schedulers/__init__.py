"""Request scheduler registry.

Schedulers are registered by name so configurations and experiment sweeps
can select them with a string. All five policies the paper's evaluation
context uses are provided.
"""

from ...errors import ConfigError
from .base import Scheduler, ProfileSnapshot, ThreadProfile
from .fcfs import FCFSScheduler
from .frfcfs import FRFCFSScheduler
from .parbs import PARBSScheduler
from .atlas import ATLASScheduler
from .tcm import TCMScheduler
from .bliss import BLISSScheduler

_REGISTRY = {
    "fcfs": FCFSScheduler,
    "frfcfs": FRFCFSScheduler,
    "parbs": PARBSScheduler,
    "atlas": ATLASScheduler,
    "tcm": TCMScheduler,
    "bliss": BLISSScheduler,
}


def make_scheduler(name: str, num_threads: int, **params: object) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown scheduler {name!r}; known: {known}"
        ) from None
    return cls(num_threads=num_threads, **params)


def scheduler_names() -> list:
    """All registered scheduler names."""
    return sorted(_REGISTRY)


__all__ = [
    "Scheduler",
    "ProfileSnapshot",
    "ThreadProfile",
    "make_scheduler",
    "scheduler_names",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "PARBSScheduler",
    "ATLASScheduler",
    "TCMScheduler",
    "BLISSScheduler",
]
