"""FR-FCFS: first-ready, first-come-first-served (Rixner et al., ISCA 2000).

The standard high-throughput baseline: requests that hit an open row go
first (they need only a CAS), ties broken by age. Thread-oblivious, which is
exactly why it is unfair under multiprogramming — memory-intensive,
high-locality threads capture banks.
"""

from __future__ import annotations

from typing import Tuple

from ..request import Request
from .base import Scheduler


class FRFCFSScheduler(Scheduler):
    """Row hits first, then oldest first."""

    name = "frfcfs"

    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        return (0 if row_hit else 1, request.arrival, request.req_id)

    def thread_priority(self, thread_id: int, now: int) -> Tuple:
        return ()  # thread-oblivious: row hit then age, for everyone

    def ordering_token(self, now: int) -> Tuple:
        return ()  # stateless: keys depend only on the request and row
