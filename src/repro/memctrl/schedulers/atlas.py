"""ATLAS: adaptive per-thread least-attained-service scheduling
(Kim et al., HPCA 2010).

Threads that have received the least memory service so far are prioritized,
with an exponential decay so ancient history fades. Attained service is the
data-bus time a thread's requests consumed. Ranks are recomputed each
quantum; within a rank level the scheduler falls back to row-hit-first,
then age.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...errors import ConfigError
from ..request import Request
from .base import ProfileSnapshot, Scheduler


class ATLASScheduler(Scheduler):
    """Least-attained-service-first with exponentially decayed history."""

    name = "atlas"

    def __init__(
        self,
        num_threads: int,
        quantum_cycles: int = 25_000,
        alpha: float = 0.875,
        service_per_request: int = 16,
    ) -> None:
        super().__init__(num_threads)
        if quantum_cycles < 1:
            raise ConfigError("quantum_cycles must be >= 1")
        if not 0.0 <= alpha < 1.0:
            raise ConfigError("alpha must be in [0, 1)")
        if service_per_request < 1:
            raise ConfigError("service_per_request must be >= 1")
        self.quantum_cycles = quantum_cycles
        self.alpha = alpha
        self.service_per_request = service_per_request
        self._attained: Dict[int, float] = {t: 0.0 for t in range(num_threads)}
        self._quantum_service: Dict[int, float] = dict(self._attained)
        self._rank: Dict[int, int] = {t: 0 for t in range(num_threads)}
        self.stat_quanta = 0

    # ------------------------------------------------------------------
    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        rank = self._rank.get(request.thread_id, self.num_threads)
        return (rank, 0 if row_hit else 1, request.arrival, request.req_id)

    def thread_priority(self, thread_id: int, now: int) -> Tuple:
        return (self._rank.get(thread_id, self.num_threads),)

    def ordering_token(self, now: int) -> Tuple:
        return (self.stat_quanta,)  # ranks change only at quantum ends

    def on_served(self, request: Request, now: int) -> None:
        if request.is_migration:
            return
        self._quantum_service[request.thread_id] = (
            self._quantum_service.get(request.thread_id, 0.0)
            + self.service_per_request
        )

    def on_quantum(self, snapshot: ProfileSnapshot) -> None:
        self.stat_quanta += 1
        for thread_id in range(self.num_threads):
            self._attained[thread_id] = (
                self.alpha * self._attained.get(thread_id, 0.0)
                + (1.0 - self.alpha) * self._quantum_service.get(thread_id, 0.0)
            )
            self._quantum_service[thread_id] = 0.0
        order = sorted(
            range(self.num_threads),
            key=lambda tid: (self._attained[tid], tid),
        )
        self._rank = {tid: rank for rank, tid in enumerate(order)}

    def attained_service(self, thread_id: int) -> float:
        """Decayed attained service of one thread (for tests/reports)."""
        return self._attained.get(thread_id, 0.0)

    def telemetry_state(self) -> Dict[str, object]:
        return {
            "quanta": self.stat_quanta,
            "attained": {
                str(tid): round(self._attained[tid], 3)
                for tid in sorted(self._attained)
            },
            "rank": [
                tid
                for tid, _ in sorted(
                    self._rank.items(), key=lambda item: item[1]
                )
            ],
        }

    def collect_metrics(self, registry) -> None:
        registry.counter(
            "repro_sched_quanta_total", "Scheduler quantum callbacks fired"
        ).inc(self.stat_quanta, scheduler=self.name)
        attained = registry.gauge(
            "repro_sched_attained_service", "Decayed attained service"
        )
        for thread_id in sorted(self._attained):
            attained.set(
                round(self._attained[thread_id], 3), thread=str(thread_id)
            )
