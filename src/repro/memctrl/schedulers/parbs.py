"""PAR-BS: parallelism-aware batch scheduling (Mutlu & Moscibroda, ISCA 2008).

Requests are grouped into batches: when the current batch drains, up to
``marking_cap`` oldest requests per (thread, bank) are marked. Marked
requests strictly outrank unmarked ones, which bounds starvation. Within a
batch, threads are ranked shortest-job-first by their maximum per-bank load
(the "max-total" rule), preserving each thread's bank-level parallelism.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set, Tuple

from ...errors import ConfigError
from ..request import Request
from .base import Scheduler


class PARBSScheduler(Scheduler):
    """Batch-based scheduler with SJF thread ranking inside a batch."""

    name = "parbs"

    def __init__(self, num_threads: int, marking_cap: int = 5) -> None:
        super().__init__(num_threads)
        if marking_cap < 1:
            raise ConfigError("marking_cap must be >= 1")
        self.marking_cap = marking_cap
        self._marked: Set[int] = set()  # request ids in the current batch
        self._thread_rank: Dict[int, int] = {}
        self.stat_batches = 0

    # ------------------------------------------------------------------
    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        if not self._marked:
            self._form_batch()
        marked = 0 if request.req_id in self._marked else 1
        rank = self._thread_rank.get(request.thread_id, self.num_threads)
        return (marked, rank, 0 if row_hit else 1, request.arrival, request.req_id)

    def on_served(self, request: Request, now: int) -> None:
        self._marked.discard(request.req_id)

    def ordering_token(self, now: int) -> Tuple:
        # Keys change only when a new batch is formed. The emptiness term
        # flips when the current batch drains, which forces the controller
        # to call key() again — and that call lazily forms the next batch
        # at exactly the cycle the reference scan would.
        return (self.stat_batches, not self._marked)

    def telemetry_state(self) -> Dict[str, object]:
        return {
            "batches": self.stat_batches,
            "marked": len(self._marked),
            "rank": [
                tid
                for tid, _ in sorted(
                    self._thread_rank.items(), key=lambda item: item[1]
                )
            ],
        }

    def collect_metrics(self, registry) -> None:
        registry.counter(
            "repro_sched_batches_total", "PAR-BS batches formed"
        ).inc(self.stat_batches, scheduler=self.name)
        registry.gauge(
            "repro_sched_marked_requests", "Marked requests still in batch"
        ).set(len(self._marked), scheduler=self.name)

    # ------------------------------------------------------------------
    def _form_batch(self) -> None:
        """Mark the oldest requests per (thread, bank) and rank threads."""
        per_thread_bank: Dict[Tuple, list] = defaultdict(list)
        for request in self.pending_reads():
            per_thread_bank[(request.thread_id, request.bank_key)].append(request)
        if not per_thread_bank:
            return
        bank_load: Dict[int, Dict[Tuple, int]] = defaultdict(dict)
        for (thread_id, bank), requests in per_thread_bank.items():
            requests.sort(key=lambda r: (r.arrival, r.req_id))
            chosen = requests[: self.marking_cap]
            for request in chosen:
                self._marked.add(request.req_id)
            bank_load[thread_id][bank] = len(chosen)
        # Max-total ranking: fewer max-per-bank marked requests => served
        # earlier (shortest job first), ties by total then thread id.
        order = sorted(
            bank_load,
            key=lambda tid: (
                max(bank_load[tid].values()),
                sum(bank_load[tid].values()),
                tid,
            ),
        )
        self._thread_rank = {tid: rank for rank, tid in enumerate(order)}
        self.stat_batches += 1
