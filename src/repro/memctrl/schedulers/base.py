"""Scheduler interface and the profile snapshot it may consume.

A scheduler's only job is to order requests: the controller asks for a
priority ``key`` per request (lower sorts first) and serves the best-key
request whose next DRAM command is legal *now*. Policies that adapt over
time (ATLAS, TCM) receive periodic quantum callbacks carrying a
:class:`ProfileSnapshot` of per-thread behaviour measured by the shared
runtime profiler.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..request import Request


@dataclass(frozen=True)
class ThreadProfile:
    """One thread's measured behaviour over the last profiling epoch."""

    thread_id: int
    mpki: float  # memory requests per kilo-instruction
    rbh: float  # row-buffer hit rate in [0, 1]
    blp: float  # mean banks with outstanding requests, when any
    bandwidth: float  # fraction of data-bus time consumed
    requests: int  # requests issued this epoch


@dataclass(frozen=True)
class ProfileSnapshot:
    """Per-thread profiles at a quantum boundary."""

    cycle: int
    threads: Dict[int, ThreadProfile] = field(default_factory=dict)

    def profile(self, thread_id: int) -> ThreadProfile:
        """Profile for one thread (a zero profile if never seen)."""
        profile = self.threads.get(thread_id)
        if profile is None:
            profile = ThreadProfile(thread_id, 0.0, 0.0, 0.0, 0.0, 0)
        return profile


class Scheduler(abc.ABC):
    """Base class for request-ordering policies.

    One scheduler instance serves all channels, because thread-level
    priority state (ranks, clusters, batches) is system-wide.
    """

    #: Set by subclasses; used in reports.
    name = "base"
    #: Quantum period in CPU cycles, or None for stateless policies.
    quantum_cycles: Optional[int] = None
    #: Offset of the first quantum boundary within the period (staggers the
    #: quantum against a policy's epoch). ``0 <= quantum_offset <
    #: quantum_cycles``; the system builder validates.
    quantum_offset: int = 0

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self._controllers: list = []

    def attach_controller(self, controller) -> None:
        """Called by the system builder for each channel controller."""
        self._controllers.append(controller)

    @abc.abstractmethod
    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        """Priority key; lower sorts first. Must be total and deterministic."""

    def thread_priority(self, thread_id: int, now: int) -> Optional[Tuple]:
        """Fast path for thread-level policies.

        When a scheduler's ordering is "thread priority, then row hit, then
        age", it can return the per-thread prefix here and the controller
        composes ``prefix + (row_miss, arrival, req_id)`` without calling
        :meth:`key` per request — the controller scan is the simulator's
        hottest loop. Return None (the default) when priority is genuinely
        per-request; the controller then falls back to :meth:`key`.
        """
        return None

    def ordering_token(self, now: int) -> Optional[Tuple]:
        """Cache-invalidation token for the controller's per-bank best cache.

        Contract: as long as the token compares equal, :meth:`key` (and
        :meth:`thread_priority`) must be a pure function of
        ``(request, row_hit)`` — the controller's fast kernel then reuses a
        bank's cached best request instead of rescanning its queue every
        decision. Any state change that can reorder requests (a quantum
        rank update, a blacklist change, a batch re-formation, a shuffle
        slot boundary) must change the token *at or before* the cycle the
        new ordering takes effect.

        Return None (the default) to disable caching: the controller then
        rescans every decision, exactly like the reference kernel.
        """
        return None

    # ------------------------------------------------------------------
    # Optional hooks.
    # ------------------------------------------------------------------
    def on_arrival(self, request: Request, now: int) -> None:
        """A request entered a controller queue."""

    def on_served(self, request: Request, now: int) -> None:
        """A request's CAS command was issued."""

    def on_quantum(self, snapshot: ProfileSnapshot) -> None:
        """A profiling quantum ended (only if ``quantum_cycles`` is set)."""

    def telemetry_state(self) -> Dict[str, object]:
        """JSON-friendly snapshot of adaptive state, for the telemetry layer.

        Stateless schedulers have nothing to report; adaptive ones (TCM,
        PAR-BS, ATLAS) override with their current clustering/ranking.
        """
        return {}

    def collect_metrics(self, registry) -> None:
        """Export adaptive-state counters into a metrics registry.

        Stateless schedulers export nothing; adaptive ones override.
        """

    # ------------------------------------------------------------------
    def pending_reads(self):
        """All queued (unserved) reads across channels, for batch policies."""
        for controller in self._controllers:
            yield from controller.read_queue
