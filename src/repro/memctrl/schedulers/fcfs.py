"""Strict first-come-first-served scheduling.

The weakest baseline: arrival order only, no row-buffer awareness. Included
because the motivation sections of this paper family measure how much
row-hit-first reordering (FR-FCFS) buys over it.
"""

from __future__ import annotations

from typing import Tuple

from ..request import Request
from .base import Scheduler


class FCFSScheduler(Scheduler):
    """Serve the oldest request, period."""

    name = "fcfs"

    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        return (request.arrival, request.req_id)

    def ordering_token(self, now: int) -> Tuple:
        return ()  # arrival order never changes
