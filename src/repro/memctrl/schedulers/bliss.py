"""BLISS: blacklisting memory scheduler (Subramanian et al., ICCD 2014).

A deliberately simple fairness mechanism: count how many requests are
served consecutively from the same thread; when the streak reaches
``blacklist_threshold``, blacklist that thread. Blacklisted threads lose
priority to everyone else (within each class, row hits then age — i.e.
FR-FCFS). The blacklist is cleared every ``clearing_interval`` cycles.

Included as context for the scheduling axis: it shows how much of TCM's
fairness a near-zero-state mechanism recovers on this substrate.
"""

from __future__ import annotations

from typing import Set, Tuple

from ...errors import ConfigError
from ..request import Request
from .base import Scheduler


class BLISSScheduler(Scheduler):
    """Streak-based blacklisting over an FR-FCFS core."""

    name = "bliss"

    def __init__(
        self,
        num_threads: int,
        blacklist_threshold: int = 4,
        clearing_interval: int = 10_000,
    ) -> None:
        super().__init__(num_threads)
        if blacklist_threshold < 1:
            raise ConfigError("blacklist_threshold must be >= 1")
        if clearing_interval < 1:
            raise ConfigError("clearing_interval must be >= 1")
        self.blacklist_threshold = blacklist_threshold
        self.clearing_interval = clearing_interval
        self._blacklist: Set[int] = set()
        self._streak_thread = -1
        self._streak_length = 0
        self._last_clear_slot = 0
        self.stat_blacklistings = 0

    # -- tunables protocol ---------------------------------------------
    @classmethod
    def tunables(cls):
        """BLISS's two knobs (Subramanian et al. defaults as centers)."""
        from ...tuner.space import Tunable

        return (
            Tunable(
                "blacklist_threshold", "int", 4, low=1, high=16,
                target="scheduler",
                description="consecutive same-thread serves before blacklisting",
            ),
            Tunable(
                "clearing_interval", "int", 10_000, low=1_000, high=100_000,
                log=True, target="scheduler",
                description="blacklist clearing period (cycles)",
            ),
        )

    # ------------------------------------------------------------------
    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        self._maybe_clear(now)
        listed = 1 if request.thread_id in self._blacklist else 0
        return (listed, 0 if row_hit else 1, request.arrival, request.req_id)

    def thread_priority(self, thread_id: int, now: int) -> Tuple:
        self._maybe_clear(now)
        return (1 if thread_id in self._blacklist else 0,)

    def ordering_token(self, now: int) -> Tuple:
        # The blacklist changes only when a thread is added (counted by
        # stat_blacklistings) or at a clearing-interval boundary (the slot
        # term — the clear itself always happens in the same slot the
        # boundary is crossed, whichever code path performs it first).
        return (now // self.clearing_interval, self.stat_blacklistings)

    def on_served(self, request: Request, now: int) -> None:
        if request.is_migration:
            return
        self._maybe_clear(now)
        if request.thread_id == self._streak_thread:
            self._streak_length += 1
            if self._streak_length >= self.blacklist_threshold:
                if request.thread_id not in self._blacklist:
                    self._blacklist.add(request.thread_id)
                    self.stat_blacklistings += 1
                self._streak_length = 0
        else:
            self._streak_thread = request.thread_id
            self._streak_length = 1

    def _maybe_clear(self, now: int) -> None:
        slot = now // self.clearing_interval
        if slot != self._last_clear_slot:
            self._last_clear_slot = slot
            self._blacklist.clear()

    # ------------------------------------------------------------------
    def blacklisted(self) -> Set[int]:
        """Currently blacklisted thread ids (for tests/reports)."""
        return set(self._blacklist)
