"""TCM: thread cluster memory scheduling (Kim et al., MICRO 2010).

Each quantum, threads are split into a *latency-sensitive* cluster (the
lowest-MPKI threads whose summed bandwidth stays under a threshold fraction
of total bandwidth) and a *bandwidth-sensitive* cluster (everyone else).
Latency-cluster requests strictly outrank bandwidth-cluster requests;
within the latency cluster lower MPKI wins; within the bandwidth cluster
priorities are periodically shuffled, biased by *niceness* — threads with
high bank-level parallelism are nice (they are hurt most by losing priority
and hurt others least when holding it), threads with high row-buffer
locality are not.

The paper's insertion shuffle is approximated by a deterministic weighted
rotation: a thread whose niceness rank is ``r`` (0 = nicest) holds the top
priority slot ``k - r`` out of every ``k(k+1)/2`` shuffle intervals. A plain
equal-share rotation is available as ``shuffle_mode="rotate"`` for the
ablation bench.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...errors import ConfigError
from ..request import Request
from .base import ProfileSnapshot, Scheduler


class TCMScheduler(Scheduler):
    """Two-cluster scheduler with shuffled bandwidth-cluster priorities."""

    name = "tcm"

    def __init__(
        self,
        num_threads: int,
        quantum_cycles: int = 25_000,
        cluster_fraction: float = 0.10,
        shuffle_interval: int = 800,
        shuffle_mode: str = "insertion",
    ) -> None:
        super().__init__(num_threads)
        if quantum_cycles < 1:
            raise ConfigError("quantum_cycles must be >= 1")
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ConfigError("cluster_fraction must be in [0, 1]")
        if shuffle_interval < 0:
            raise ConfigError("shuffle_interval must be >= 0")
        if shuffle_mode not in ("insertion", "rotate"):
            raise ConfigError("shuffle_mode must be 'insertion' or 'rotate'")
        self.quantum_cycles = quantum_cycles
        self.cluster_fraction = cluster_fraction
        self.shuffle_interval = shuffle_interval
        self.shuffle_mode = shuffle_mode
        self._latency_rank: Dict[int, int] = {}
        self._bw_threads: List[int] = []  # niceness-descending
        self._bw_rank: Dict[int, int] = {}
        self._shuffle_schedule: List[int] = []
        self._last_shuffle_slot = -1
        self.stat_quanta = 0

    # -- tunables protocol ---------------------------------------------
    @classmethod
    def tunables(cls):
        """TCM's cluster/shuffle knobs (Kim et al. defaults as centers)."""
        from ...tuner.space import Tunable

        return (
            Tunable(
                "quantum_cycles", "int", 25_000, low=5_000, high=200_000,
                log=True, target="scheduler",
                description="clustering quantum (CPU cycles)",
            ),
            Tunable(
                "cluster_fraction", "float", 0.10, low=0.0, high=0.5,
                target="scheduler",
                description="bandwidth share reserved for the latency cluster",
            ),
            Tunable(
                "shuffle_interval", "int", 800, low=100, high=10_000,
                log=True, target="scheduler",
                description="bandwidth-cluster priority shuffle period",
            ),
            Tunable(
                "shuffle_mode", "choice", "insertion",
                choices=("insertion", "rotate"), target="scheduler",
                description="niceness-weighted vs equal-share shuffle",
            ),
        )

    # ------------------------------------------------------------------
    def key(self, request: Request, row_hit: bool, now: int) -> Tuple:
        cluster, rank = self.thread_priority(request.thread_id, now)
        return (cluster, rank, 0 if row_hit else 1, request.arrival, request.req_id)

    def thread_priority(self, thread_id: int, now: int) -> Tuple:
        self._maybe_shuffle(now)
        if thread_id in self._latency_rank:
            return (0, self._latency_rank[thread_id])
        return (1, self._bw_rank.get(thread_id, self.num_threads))

    def ordering_token(self, now: int) -> Tuple:
        # Priorities change at quantum ends and at shuffle-slot boundaries.
        # Including the slot forces the controller to re-query
        # thread_priority there, which applies the lazy shuffle at exactly
        # the cycles the reference scan would.
        if self.shuffle_interval > 0:
            return (self.stat_quanta, now // self.shuffle_interval)
        return (self.stat_quanta,)

    # ------------------------------------------------------------------
    def on_quantum(self, snapshot: ProfileSnapshot) -> None:
        profiles = [snapshot.profile(t) for t in range(self.num_threads)]
        total_bw = sum(p.bandwidth for p in profiles)
        budget = self.cluster_fraction * total_bw
        by_mpki = sorted(profiles, key=lambda p: (p.mpki, p.thread_id))
        latency: List[int] = []
        used = 0.0
        for profile in by_mpki:
            # The latency cluster may be empty: when every thread is
            # bandwidth-heavy, giving any of them strict priority would
            # starve the rest (the cluster threshold exists precisely to
            # cap how much bandwidth can bypass the shuffle).
            if used + profile.bandwidth <= budget:
                latency.append(profile.thread_id)
                used += profile.bandwidth
            else:
                break
        latency_set = set(latency)
        self._latency_rank = {tid: rank for rank, tid in enumerate(latency)}
        bandwidth = [p for p in by_mpki if p.thread_id not in latency_set]
        # Niceness: high BLP => nicer, high row-buffer locality => less nice.
        blp_order = sorted(bandwidth, key=lambda p: (p.blp, p.thread_id))
        rbh_order = sorted(bandwidth, key=lambda p: (p.rbh, p.thread_id))
        blp_rank = {p.thread_id: i for i, p in enumerate(blp_order)}
        rbh_rank = {p.thread_id: i for i, p in enumerate(rbh_order)}
        niceness = {
            p.thread_id: blp_rank[p.thread_id] - rbh_rank[p.thread_id]
            for p in bandwidth
        }
        self._bw_threads = sorted(
            (p.thread_id for p in bandwidth),
            key=lambda tid: (-niceness[tid], tid),
        )
        self._rebuild_shuffle_schedule()
        self._apply_shuffle(0)
        self._last_shuffle_slot = -1
        self.stat_quanta += 1

    # ------------------------------------------------------------------
    def _rebuild_shuffle_schedule(self) -> None:
        threads = self._bw_threads
        k = len(threads)
        if self.shuffle_mode == "rotate" or k == 0:
            self._shuffle_schedule = list(range(k))
            return
        # Weighted rotation: niceness rank r holds the top slot k - r times.
        schedule: List[int] = []
        for rank in range(k):
            schedule.extend([rank] * (k - rank))
        self._shuffle_schedule = schedule

    def _maybe_shuffle(self, now: int) -> None:
        if not self._bw_threads or self.shuffle_interval <= 0:
            return
        slot = now // self.shuffle_interval
        if slot == self._last_shuffle_slot:
            return
        self._last_shuffle_slot = slot
        self._apply_shuffle(slot)

    def _apply_shuffle(self, slot: int) -> None:
        threads = self._bw_threads
        k = len(threads)
        if k == 0:
            self._bw_rank = {}
            return
        if self.shuffle_mode == "rotate":
            top_index = slot % k
        else:
            schedule = self._shuffle_schedule
            top_index = schedule[slot % len(schedule)]
        remaining = [tid for i, tid in enumerate(threads) if i != top_index]
        # The non-top positions rotate too, so every thread cycles through
        # the low ranks — only the *top* slot is niceness-weighted. Without
        # this, the least nice thread would sit at the bottom almost
        # permanently and starve.
        if remaining:
            offset = slot % len(remaining)
            remaining = remaining[offset:] + remaining[:offset]
        order = [threads[top_index]] + remaining
        self._bw_rank = {tid: rank for rank, tid in enumerate(order)}

    # ------------------------------------------------------------------
    # Introspection for tests and reports.
    # ------------------------------------------------------------------
    def latency_cluster(self) -> List[int]:
        """Thread ids currently in the latency-sensitive cluster."""
        return sorted(self._latency_rank)

    def bandwidth_cluster(self) -> List[int]:
        """Thread ids currently in the bandwidth-sensitive cluster."""
        return list(self._bw_threads)

    def telemetry_state(self) -> Dict[str, object]:
        return {
            "latency_cluster": self.latency_cluster(),
            "bandwidth_cluster": self.bandwidth_cluster(),
            "bw_rank": {str(t): r for t, r in sorted(self._bw_rank.items())},
            "quanta": self.stat_quanta,
        }

    def collect_metrics(self, registry) -> None:
        registry.counter(
            "repro_sched_quanta_total", "Scheduler quantum callbacks fired"
        ).inc(self.stat_quanta, scheduler=self.name)
        size = registry.gauge(
            "repro_sched_cluster_size", "Threads per TCM cluster at collect"
        )
        size.set(len(self._latency_rank), cluster="latency")
        size.set(len(self._bw_threads), cluster="bandwidth")
