"""Per-channel memory controller.

The controller owns the read and write queues for one channel, turns the
scheduler's request ordering into legal command sequences (precharge /
activate / CAS), drains writes between watermarks, and keeps refresh on
schedule. It is event-driven: a decision event issues at most one command,
then reschedules itself either one command-bus slot later (more work ready)
or at the earliest cycle anything can become issuable (event skipping) —
never cycle by cycle.

Two interchangeable decision kernels implement the per-decision work (see
DESIGN.md "Simulation kernel"):

* ``reference`` — rescans every queued request each decision through
  :meth:`Scheduler.key` / :meth:`Scheduler.thread_priority` and the
  channel's ``earliest_*`` queries. Deliberately transparent; the golden
  fixture in ``tests/data/kernel_golden.json`` pins its results.
* ``fast`` (default) — per-bank indexed queues with a memoized best
  request per bank, invalidated by command issue and by the scheduler's
  :meth:`Scheduler.ordering_token`, plus bank-independent per-rank timing
  floors computed once per decision. Bit-identical to ``reference`` by
  contract, enforced by ``tests/test_kernel_equivalence.py`` over the full
  approach x page-policy grid.

Both kernels share the same decision-event scheduling, so even the engine's
event stream (and therefore ``Engine.stat_events``) is identical.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import Dict, List, Optional, Tuple

from ..config import ControllerConfig
from ..dram.channel import Channel
from ..dram.commands import Command, CommandType
from ..errors import ConfigError, SimulationError
from .request import Request
from .schedulers.base import Scheduler

_FAR_FUTURE = 1 << 62

#: The two decision kernels; ``fast`` must stay bit-identical to
#: ``reference`` (differential-tested), so the default is safe to flip.
KERNELS = ("fast", "reference")

#: Unique sentinel: "no ordering token cached yet" (distinct from any
#: token a scheduler can return, including None).
_TOKEN_UNSET = object()


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a kernel name: explicit argument > $REPRO_KERNEL > fast.

    The kernel is an implementation switch with no simulation-visible
    effect, which is why it is *not* part of :class:`SystemConfig` (and
    therefore never perturbs campaign store keys).
    """
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL") or "fast"
    if kernel not in KERNELS:
        raise ConfigError(
            f"unknown simulation kernel {kernel!r} (choose from {KERNELS})"
        )
    return kernel


class ControllerStats:
    """Aggregate and per-thread service statistics for one channel."""

    def __init__(self) -> None:
        self.reads_served = 0
        self.writes_served = 0
        self.row_hits = 0
        self.row_misses = 0
        self.read_latency_sum = 0
        self.per_thread_reads: Dict[int, int] = {}
        self.per_thread_writes: Dict[int, int] = {}
        self.per_thread_row_hits: Dict[int, int] = {}
        self.per_thread_latency_sum: Dict[int, int] = {}
        self.data_bus_busy = 0
        #: OS page-copy CAS commands, kept out of the performance counters
        #: above but still charged to the data bus.
        self.migration_reads = 0
        self.migration_writes = 0

    def record_cas(
        self,
        request: Request,
        now: int,
        row_hit: bool,
        burst: int,
        data_end: int,
    ) -> None:
        """Account one served CAS.

        ``data_end`` is the cycle the last data beat crosses the bus — read
        latency is measured to there, not to CAS issue, so it includes
        CL + tBURST. Migration traffic occupies the bus (and is counted as
        such) but is excluded from every performance counter, per the
        :class:`~repro.memctrl.request.Request` contract.
        """
        self.data_bus_busy += burst
        if request.is_migration:
            if request.is_write:
                self.migration_writes += 1
            else:
                self.migration_reads += 1
            return
        thread = request.thread_id
        if request.is_write:
            self.writes_served += 1
            self.per_thread_writes[thread] = self.per_thread_writes.get(thread, 0) + 1
        else:
            self.reads_served += 1
            self.per_thread_reads[thread] = self.per_thread_reads.get(thread, 0) + 1
            latency = data_end - request.arrival
            self.read_latency_sum += latency
            self.per_thread_latency_sum[thread] = (
                self.per_thread_latency_sum.get(thread, 0) + latency
            )
        if row_hit:
            self.row_hits += 1
            self.per_thread_row_hits[thread] = (
                self.per_thread_row_hits.get(thread, 0) + 1
            )
        else:
            self.row_misses += 1

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class ChannelController:
    """Scheduler-driven command issue for one channel."""

    def __init__(
        self,
        channel: Channel,
        config: ControllerConfig,
        scheduler: Scheduler,
        engine,
        kernel: Optional[str] = None,
    ) -> None:
        self.channel = channel
        self.config = config
        self.scheduler = scheduler
        self.engine = engine
        self.kernel = resolve_kernel(kernel)
        self._write_drain = False
        self._next_decision: Optional[int] = None
        self.stats = ControllerStats()
        self._listeners: List[object] = []
        # Per-bank indexed queues: requests live in their target bank's
        # bucket (global bank index gb = rank * banks_per_rank + bank).
        # The scan visits banks, not requests, and CAS removal touches a
        # short bucket instead of an O(queue) flat-list remove.
        self._banks_per_rank = len(channel.ranks[0].banks)
        num_banks = len(channel.ranks) * self._banks_per_rank
        self._banks_flat = [b for r in channel.ranks for b in r.banks]
        self._rank_of_gb = [
            gb // self._banks_per_rank for gb in range(num_banks)
        ]
        self._read_by_bank: List[List[Request]] = [[] for _ in range(num_banks)]
        self._write_by_bank: List[List[Request]] = [[] for _ in range(num_banks)]
        self._read_count = 0
        self._write_count = 0
        # Occupied-bucket index: gb -> None for every non-empty bucket, so
        # the scan visits only banks that actually hold requests. A dict
        # (not a set) for its guaranteed O(1) ordered iteration; the scan
        # result is iteration-order independent (keys embed req_id).
        self._occ_read: Dict[int, None] = {}
        self._occ_write: Dict[int, None] = {}
        # Fast-kernel memo: per bank per direction, the winning
        # (key, request, kind, bank_ready) — kind is 0=CAS / 1=ACT / 2=PRE
        # and bank_ready the bank-local horizon for that kind, both
        # snapshotted at recompute time. An entry stays valid until its
        # bank is dirtied: enqueue, CAS removal, any command that moves the
        # bank's horizons or open row (ACT/PRE/CAS on the bank, rank-wide
        # REFRESH), or an ordering-token change (read side only).
        self._best_read: List[Optional[Tuple]] = [None] * num_banks
        self._best_write: List[Optional[Tuple]] = [None] * num_banks
        self._dirty_read = [True] * num_banks
        self._dirty_write = [True] * num_banks
        self._read_token: object = _TOKEN_UNSET
        self._kind_map_read = (
            CommandType.READ, CommandType.ACTIVATE, CommandType.PRECHARGE
        )
        self._kind_map_write = (
            CommandType.WRITE, CommandType.ACTIVATE, CommandType.PRECHARGE
        )
        # Bound once: _request_decision pushes this on the agenda directly.
        self._decision_cb = self._on_decision_event
        # min(next_refresh_due) over ranks, maintained on every REFRESH so
        # the per-decision "any refresh due?" check is one compare. With
        # refresh disabled every rank reports a far-future due cycle.
        self._min_refresh_due = min(r.next_refresh_due for r in channel.ranks)
        # Wake memo: a non-issuing scan knows, at scan time, exactly which
        # candidate will win at its own wake-up cycle (all readiness inputs
        # are controller-local). (generation, wake_cycle, is_write, entry);
        # valid only while the generation counter is unchanged.
        self._gen = 0
        self._wake_memo: Optional[Tuple] = None
        # Hot-loop constants.
        self._page_closed = config.page_policy == "closed"
        self._high_wm = config.write_high_watermark
        self._low_wm = config.write_low_watermark
        self._try_issue = (
            self._try_issue_fast
            if self.kernel == "fast"
            else self._try_issue_reference
        )
        # Kernel introspection counters (flight recorder). Plain ints so
        # they pickle with the system and cost one attribute bump where
        # they fire; exported as repro_kernel_* metrics, which kernelgrid
        # strips from the differential document (the two kernels
        # legitimately differ here and nowhere else). `_kc_on` gates the
        # sites shared with the reference kernel so `reference` stays
        # all-zero — pinned by tests/test_kernel_counters.py.
        self._kc_on = self.kernel == "fast"
        self.kc_decisions = 0
        self.kc_wake_hits = 0
        self.kc_wake_misses = 0
        self.kc_scans = 0
        self.kc_best_hits = 0
        self.kc_best_misses = 0
        self.kc_scanned_requests = 0
        self.kc_inval_enqueue = 0
        self.kc_inval_activate = 0
        self.kc_inval_precharge = 0
        self.kc_inval_cas = 0
        self.kc_inval_refresh = 0
        self.kc_inval_token = 0
        scheduler.attach_controller(self)
        if config.refresh_enabled:
            first_due = min(r.next_refresh_due for r in channel.ranks)
            self._request_decision(first_due)

    # ------------------------------------------------------------------
    # Observability (pull model: reads the stat counters, post-run).
    # ------------------------------------------------------------------
    def collect_metrics(self, registry) -> None:
        """Export this controller's service statistics into a registry."""
        channel = str(self.channel.channel_id)
        stats = self.stats
        served = registry.counter(
            "repro_ctrl_requests_served_total",
            "Demand CAS commands served, by operation",
        )
        served.inc(stats.reads_served, channel=channel, op="read")
        served.inc(stats.writes_served, channel=channel, op="write")
        rows = registry.counter(
            "repro_ctrl_row_outcomes_total",
            "Row-buffer outcome of each demand CAS",
        )
        rows.inc(stats.row_hits, channel=channel, outcome="hit")
        rows.inc(stats.row_misses, channel=channel, outcome="miss")
        migration = registry.counter(
            "repro_ctrl_migration_cas_total",
            "Page-copy CAS commands (excluded from demand counters)",
        )
        migration.inc(stats.migration_reads, channel=channel, op="read")
        migration.inc(stats.migration_writes, channel=channel, op="write")
        registry.counter(
            "repro_ctrl_data_bus_busy_cycles_total",
            "CPU cycles the data bus spent transferring bursts",
        ).inc(stats.data_bus_busy, channel=channel)
        depth = registry.gauge(
            "repro_ctrl_queue_depth", "Requests queued at collect time"
        )
        depth.set(self._read_count, channel=channel, queue="read")
        depth.set(self._write_count, channel=channel, queue="write")
        per_thread = registry.counter(
            "repro_ctrl_thread_requests_total",
            "Demand requests served per thread",
        )
        latency = registry.histogram(
            "repro_ctrl_thread_mean_read_latency_cycles",
            "Per-thread mean read latency (one observation per thread)",
        )
        threads = set(stats.per_thread_reads) | set(stats.per_thread_writes)
        for thread_id in sorted(threads):
            reads = stats.per_thread_reads.get(thread_id, 0)
            writes = stats.per_thread_writes.get(thread_id, 0)
            per_thread.inc(
                reads, channel=channel, thread=str(thread_id), op="read"
            )
            per_thread.inc(
                writes, channel=channel, thread=str(thread_id), op="write"
            )
            if reads:
                latency.observe(
                    stats.per_thread_latency_sum.get(thread_id, 0) / reads,
                    channel=channel,
                )
        self._collect_kernel_metrics(registry, channel)

    def _collect_kernel_metrics(self, registry, channel: str) -> None:
        """Export the fast-kernel introspection counters.

        All repro_kernel_* series legitimately differ between the two
        decision kernels (reference leaves them at zero), so
        ``kernelgrid.grid_doc`` strips the prefix from the differential
        document rather than regenerating the golden fixture.
        """
        registry.counter(
            "repro_kernel_decisions_total",
            "Fast-kernel decision invocations",
        ).inc(self.kc_decisions, channel=channel)
        wake = registry.counter(
            "repro_kernel_wake_memo_total",
            "Wake-memo outcomes: hit = issue without any scan",
        )
        wake.inc(self.kc_wake_hits, channel=channel, result="hit")
        wake.inc(self.kc_wake_misses, channel=channel, result="miss")
        registry.counter(
            "repro_kernel_scans_total",
            "Full occupied-bucket scans (wake memo did not short-circuit)",
        ).inc(self.kc_scans, channel=channel)
        best = registry.counter(
            "repro_kernel_best_memo_total",
            "Per-bank best-request memo outcomes during scans",
        )
        best.inc(self.kc_best_hits, channel=channel, result="hit")
        best.inc(self.kc_best_misses, channel=channel, result="miss")
        registry.counter(
            "repro_kernel_scanned_requests_total",
            "Requests visited while recomputing dirty bank buckets",
        ).inc(self.kc_scanned_requests, channel=channel)
        inval = registry.counter(
            "repro_kernel_invalidations_total",
            "Best-memo invalidation events by cause",
        )
        inval.inc(self.kc_inval_enqueue, channel=channel, cause="enqueue")
        inval.inc(self.kc_inval_activate, channel=channel, cause="activate")
        inval.inc(self.kc_inval_precharge, channel=channel, cause="precharge")
        inval.inc(self.kc_inval_cas, channel=channel, cause="cas")
        inval.inc(self.kc_inval_refresh, channel=channel, cause="refresh")
        inval.inc(self.kc_inval_token, channel=channel, cause="token")

    # ------------------------------------------------------------------
    # External surface.
    # ------------------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Register a profiling listener (on_arrival / on_cas hooks)."""
        self._listeners.append(listener)

    def enqueue(self, request: Request, now: int) -> None:
        """Accept a request into the appropriate queue at cycle ``now``."""
        if request.loc.channel != self.channel.channel_id:
            raise SimulationError(
                f"request for channel {request.loc.channel} sent to "
                f"controller {self.channel.channel_id}"
            )
        gb = request.rank * self._banks_per_rank + request.bank
        self._gen += 1
        if self._kc_on:
            self.kc_inval_enqueue += 1
        if request.is_write:
            self._write_by_bank[gb].append(request)
            self._write_count += 1
            self._dirty_write[gb] = True
            self._occ_write[gb] = None
        else:
            self._read_by_bank[gb].append(request)
            self._read_count += 1
            self._dirty_read[gb] = True
            self._occ_read[gb] = None
        self.scheduler.on_arrival(request, now)
        for listener in self._listeners:
            listener.on_arrival(request, now)
        self._request_decision(now)

    @property
    def read_queue(self) -> List[Request]:
        """All queued reads (materialized; grouped by bank, FIFO within)."""
        return [r for bucket in self._read_by_bank for r in bucket]

    @property
    def write_queue(self) -> List[Request]:
        """All queued writes (materialized; grouped by bank, FIFO within)."""
        return [r for bucket in self._write_by_bank for r in bucket]

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (both directions)."""
        return self._read_count + self._write_count

    # ------------------------------------------------------------------
    # Decision scheduling (stale-event pattern on the shared engine).
    # ------------------------------------------------------------------
    def _request_decision(self, cycle: int) -> None:
        next_decision = self._next_decision
        if next_decision is not None and next_decision <= cycle:
            return
        self._next_decision = cycle
        # Direct agenda push: engine.schedule minus the call and its
        # past-guard. Every caller passes cycle >= now by construction
        # (enqueue and post-issue wake-ups pass now or later; refresh
        # wake-ups are only requested when the due cycle is ahead), and
        # the differential grid pins the resulting event order.
        engine = self.engine
        agenda = engine._agenda
        heappush(agenda, (cycle, next(engine._sequence), self._decision_cb))
        if len(agenda) > engine.stat_agenda_peak:
            engine.stat_agenda_peak = len(agenda)

    # ------------------------------------------------------------------
    # The decision: issue at most one command at `now`.
    # ------------------------------------------------------------------
    def _on_decision_event(self, now: int) -> None:
        if self._next_decision != now:
            return  # superseded by an earlier decision request
        self._next_decision = None
        # Write-drain hysteresis between the two watermarks.
        writes = self._write_count
        if self._write_drain:
            if writes <= self._low_wm or not writes:
                self._write_drain = False
        elif writes >= self._high_wm:
            self._write_drain = True
        issued, next_event = self._try_issue(now)
        if issued:
            more_work = (
                self._read_count
                or self._write_count
                or now >= self._min_refresh_due
            )
            if not more_work and self._page_closed:
                # Stay awake to close rows left open by the last requests.
                more_work = any(
                    rank.open_row_count() for rank in self.channel.ranks
                )
            if more_work:
                self._request_decision(now + self.channel.clock_ratio)
            else:
                self._schedule_refresh_wake()
        elif next_event < _FAR_FUTURE:
            self._request_decision(next_event)
        else:
            self._schedule_refresh_wake()

    def _schedule_refresh_wake(self) -> None:
        if not self.config.refresh_enabled:
            return
        self._request_decision(self._min_refresh_due)

    # ------------------------------------------------------------------
    # Reference kernel: full rescan per decision.
    # ------------------------------------------------------------------
    def _try_issue_reference(self, now: int) -> Tuple[bool, int]:
        """Issue the best legal command at ``now``; returns (issued, next_t)."""
        next_event = _FAR_FUTURE
        ranks = self.channel.ranks
        # 1. Refresh has absolute priority on its rank.
        refresh_ranks = [r for r in ranks if now >= r.next_refresh_due]
        for rank in refresh_ranks:
            issued, ready = self._progress_refresh(rank, now)
            if issued:
                return True, _FAR_FUTURE
            next_event = min(next_event, ready)
        blocked_ranks = {r.rank_id for r in refresh_ranks}
        # 2. Pick the active queue.
        if self._write_drain:
            buckets, is_write = self._write_by_bank, True
        elif self._read_count:
            buckets, is_write = self._read_by_bank, False
        elif self._write_count:
            buckets, is_write = self._write_by_bank, True
        else:
            if self._page_closed:
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                next_event = min(next_event, ready)
            return False, next_event
        # 3. Best request per bank under the scheduler's ordering, then the
        # best issuable candidate among the per-bank bests. Thread-level
        # schedulers expose a per-thread priority prefix so key() need not
        # run per request. Keys embed req_id, so the per-bank minimum (and
        # the global choice) is independent of scan order.
        scheduler = self.scheduler
        banks_flat = self._banks_flat
        rank_of = self._rank_of_gb
        prefixes: Dict[int, Optional[Tuple]] = {}
        best_choice = None
        for gb, bucket in enumerate(buckets):
            if not bucket:
                continue
            rank_id = rank_of[gb]
            if rank_id in blocked_ranks:
                continue
            open_row = banks_flat[gb].open_row
            best = None
            for request in bucket:
                row_hit = open_row == request.row
                if is_write:
                    # Writes drain row-hit-first regardless of policy.
                    key = (0 if row_hit else 1, request.arrival, request.req_id)
                else:
                    thread_id = request.thread_id
                    if thread_id in prefixes:
                        prefix = prefixes[thread_id]
                    else:
                        prefix = scheduler.thread_priority(thread_id, now)
                        prefixes[thread_id] = prefix
                    if prefix is None:
                        key = scheduler.key(request, row_hit, now)
                    else:
                        key = prefix + (
                            0 if row_hit else 1,
                            request.arrival,
                            request.req_id,
                        )
                if best is None or key < best[0]:
                    best = (key, request, row_hit)
            key, request, row_hit = best
            command, ready = self._next_command_for(request, row_hit, now)
            if ready <= now:
                if best_choice is None or key < best_choice[0]:
                    best_choice = (key, request, command, row_hit)
            elif ready < next_event:
                next_event = ready
        if best_choice is None:
            if self._page_closed:
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                next_event = min(next_event, ready)
            return False, next_event
        _key, request, command, _row_hit = best_choice
        self._issue_command(request, command, now, is_write)
        return True, _FAR_FUTURE

    # ------------------------------------------------------------------
    # Fast kernel: memoized per-bank bests + per-rank timing floors.
    # ------------------------------------------------------------------
    def _try_issue_fast(self, now: int) -> Tuple[bool, int]:
        """Bit-identical fast path of :meth:`_try_issue_reference`."""
        self.kc_decisions += 1
        memo = self._wake_memo
        if memo is not None:
            self._wake_memo = None
            # A non-issuing scan precomputed its wake-up's winner; it holds
            # if nothing touched this controller since (generation), the
            # wake fires at the predicted cycle, no refresh came due, and
            # the scheduler ordering is unchanged (write keys are static;
            # read keys are pinned by the token).
            if (
                memo[0] == self._gen
                and memo[1] == now
                and now < self._min_refresh_due
                and (
                    memo[2]
                    or self.scheduler.ordering_token(now) == memo[3]
                )
            ):
                self.kc_wake_hits += 1
                entry = memo[4]
                is_write = memo[2]
                kind_map = (
                    self._kind_map_write if is_write else self._kind_map_read
                )
                self._issue_command(
                    entry[1], kind_map[entry[2]], now, is_write
                )
                return True, _FAR_FUTURE
            self.kc_wake_misses += 1
        next_event = _FAR_FUTURE
        channel = self.channel
        ranks = channel.ranks
        blocked_ranks: Tuple[int, ...] = ()
        if now >= self._min_refresh_due:
            for rank in ranks:
                if now >= rank.next_refresh_due:
                    issued, ready = self._progress_refresh(rank, now)
                    if issued:
                        return True, _FAR_FUTURE
                    if ready < next_event:
                        next_event = ready
                    blocked_ranks += (rank.rank_id,)
        if self._write_drain:
            is_write = True
        elif self._read_count:
            is_write = False
        elif self._write_count:
            is_write = True
        else:
            if self._page_closed:
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                if ready < next_event:
                    next_event = ready
            return False, next_event
        scheduler = self.scheduler
        if is_write:
            occupied = self._occ_write
            buckets = self._write_by_bank
            best_cache = self._best_write
            dirty = self._dirty_write
            refresh_token = False
        else:
            occupied = self._occ_read
            buckets = self._read_by_bank
            best_cache = self._best_read
            dirty = self._dirty_read
            token = scheduler.ordering_token(now)
            refresh_token = token is None or token != self._read_token
            if refresh_token:
                # Only occupied buckets matter: empty ones are re-dirtied
                # by the enqueue that repopulates them.
                self.kc_inval_token += 1
                for gb in occupied:
                    dirty[gb] = True
        self.kc_scans += 1
        banks_flat = self._banks_flat
        rank_of = self._rank_of_gb
        cas_floors: List[Optional[int]] = [None] * len(ranks)
        cmd_free = channel._next_cmd_free
        prefixes: Optional[Dict[int, Optional[Tuple]]] = None
        best_choice = None
        wake_best = None
        check_blocked = bool(blocked_ranks)
        # Scan-local counter accumulators, flushed once after the loop.
        kc_best_hits = 0
        kc_best_misses = 0
        kc_scanned = 0
        kc_floor_computed = 0
        kc_floor_skipped = 0
        for gb in occupied:
            rank_id = rank_of[gb]
            if check_blocked and rank_id in blocked_ranks:
                continue
            if dirty[gb]:
                kc_best_misses += 1
                kc_scanned += len(buckets[gb])
                bank = banks_flat[gb]
                open_row = bank.open_row
                best_key = None
                best_req = None
                if is_write:
                    for request in buckets[gb]:
                        key = (
                            0 if open_row == request.row else 1,
                            request.arrival,
                            request.req_id,
                        )
                        if best_key is None or key < best_key:
                            best_key = key
                            best_req = request
                else:
                    if prefixes is None:
                        prefixes = {}
                    for request in buckets[gb]:
                        row_hit = open_row == request.row
                        thread_id = request.thread_id
                        if thread_id in prefixes:
                            prefix = prefixes[thread_id]
                        else:
                            prefix = scheduler.thread_priority(thread_id, now)
                            prefixes[thread_id] = prefix
                        if prefix is None:
                            key = scheduler.key(request, row_hit, now)
                        else:
                            key = prefix + (
                                0 if row_hit else 1,
                                request.arrival,
                                request.req_id,
                            )
                        if best_key is None or key < best_key:
                            best_key = key
                            best_req = request
                # Snapshot the next command kind and the bank-local part
                # of its readiness; valid until this bank is dirtied.
                if open_row == best_req.row:
                    kind = 0
                    bready = (
                        bank.earliest_write if is_write else bank.earliest_read
                    )
                elif open_row is None:
                    kind = 1
                    bready = bank.earliest_activate
                else:
                    kind = 2
                    bready = bank.earliest_precharge
                entry = (best_key, best_req, kind, bready)
                best_cache[gb] = entry
                dirty[gb] = False
            else:
                kc_best_hits += 1
                entry = best_cache[gb]
                kind = entry[2]
                bready = entry[3]
            # Readiness: cached bank horizon against the live shared
            # floors (command bus, rank ACT window, CAS bus/turnaround).
            if kind == 0:
                ready = cas_floors[rank_id]
                if ready is None:
                    kc_floor_computed += 1
                    ready = channel.cas_floor(rank_id, is_write)
                    cas_floors[rank_id] = ready
                else:
                    kc_floor_skipped += 1
                if bready > ready:
                    ready = bready
            elif kind == 1:
                ready = ranks[rank_id]._act_ready
                if bready > ready:
                    ready = bready
                if cmd_free > ready:
                    ready = cmd_free
            else:
                ready = bready if bready > cmd_free else cmd_free
            if ready <= now:
                if best_choice is None or entry[0] < best_choice[0]:
                    best_choice = entry
            elif ready < next_event:
                next_event = ready
                wake_best = entry
            elif (
                ready == next_event
                and wake_best is not None
                and entry[0] < wake_best[0]
            ):
                wake_best = entry
        self.kc_best_hits += kc_best_hits
        self.kc_best_misses += kc_best_misses
        self.kc_scanned_requests += kc_scanned
        channel.kc_cas_floor_computed += kc_floor_computed
        channel.kc_cas_floor_skipped += kc_floor_skipped
        if not is_write and refresh_token:
            # Re-read after the scan: key() may have mutated lazy scheduler
            # state (e.g. PAR-BS batch formation), and the cached bests
            # reflect the post-mutation ordering.
            self._read_token = scheduler.ordering_token(now)
        if best_choice is None:
            if self._page_closed:
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                if ready < next_event:
                    next_event = ready
            elif (
                wake_best is not None
                and not check_blocked
                and (is_write or self._read_token is not None)
            ):
                # All of next_event's inputs are controller-local, so the
                # winner at the wake-up cycle is already decided — unless
                # an enqueue, command, refresh, or token change intervenes
                # (each checked on the wake side).
                self._wake_memo = (
                    self._gen,
                    next_event,
                    is_write,
                    None if is_write else self._read_token,
                    wake_best,
                )
            return False, next_event
        kind_map = self._kind_map_write if is_write else self._kind_map_read
        self._issue_command(
            best_choice[1], kind_map[best_choice[2]], now, is_write
        )
        return True, _FAR_FUTURE

    def _close_stale_rows(self, now: int, blocked_ranks) -> Tuple[bool, int]:
        """Closed-page policy: precharge open banks no queued request wants.

        Real work always takes priority — this only runs when nothing else
        was issuable this cycle.
        """
        ready = _FAR_FUTURE
        reads = self._read_by_bank
        writes = self._write_by_bank
        nb = self._banks_per_rank
        for rank in self.channel.ranks:
            rank_id = rank.rank_id
            if rank_id in blocked_ranks:
                continue
            base = rank_id * nb
            for bank in rank.banks:
                open_row = bank.open_row
                if open_row is None:
                    continue
                gb = base + bank.bank_id
                if any(r.row == open_row for r in reads[gb]) or any(
                    r.row == open_row for r in writes[gb]
                ):
                    continue  # still useful
                t = self.channel.earliest_precharge(rank_id, bank.bank_id)
                if t <= now:
                    self.channel.issue(
                        Command(
                            cycle=now,
                            kind=CommandType.PRECHARGE,
                            channel=self.channel.channel_id,
                            rank=rank_id,
                            bank=bank.bank_id,
                        )
                    )
                    self._gen += 1
                    self._dirty_read[gb] = True
                    self._dirty_write[gb] = True
                    if self._kc_on:
                        self.kc_inval_precharge += 1
                    return True, _FAR_FUTURE
                if t < ready:
                    ready = t
        return False, ready

    def _next_command_for(
        self, request: Request, row_hit: bool, now: int
    ) -> Tuple[CommandType, int]:
        rank, bank_id = request.rank, request.bank
        bank = self.channel.ranks[rank].banks[bank_id]
        if row_hit:
            ready = self.channel.earliest_cas(rank, bank_id, request.is_write)
            kind = CommandType.WRITE if request.is_write else CommandType.READ
            return kind, ready
        if bank.open_row is None:
            return CommandType.ACTIVATE, self.channel.earliest_activate(
                rank, bank_id
            )
        return CommandType.PRECHARGE, self.channel.earliest_precharge(
            rank, bank_id
        )

    def _issue_command(
        self, request: Request, kind: CommandType, now: int, is_write: bool
    ) -> None:
        command = Command(
            cycle=now,
            kind=kind,
            channel=self.channel.channel_id,
            rank=request.rank,
            bank=request.bank,
            row=request.row if kind is CommandType.ACTIVATE else -1,
            thread_id=request.thread_id,
        )
        result = self.channel.issue(command)
        self._gen += 1
        gb = request.rank * self._banks_per_rank + request.bank
        if kind is CommandType.ACTIVATE:
            request.needed_activate = True
            # The open row changed: cached row-hit bits are stale in both
            # directions.
            self._dirty_read[gb] = True
            self._dirty_write[gb] = True
            if self._kc_on:
                self.kc_inval_activate += 1
            return
        if kind is CommandType.PRECHARGE:
            self._dirty_read[gb] = True
            self._dirty_write[gb] = True
            if self._kc_on:
                self.kc_inval_precharge += 1
            return
        # CAS: the request is served. The CAS also moves the bank's
        # precharge horizon (tRTP / tWR), so cached entries go stale in
        # *both* directions, not just the bucket the request left.
        self._dirty_read[gb] = True
        self._dirty_write[gb] = True
        if self._kc_on:
            self.kc_inval_cas += 1
        if is_write:
            bucket = self._write_by_bank[gb]
            bucket.remove(request)
            self._write_count -= 1
            if not bucket:
                del self._occ_write[gb]
        else:
            bucket = self._read_by_bank[gb]
            bucket.remove(request)
            self._read_count -= 1
            if not bucket:
                del self._occ_read[gb]
        request.served_at = now
        row_hit = not request.needed_activate
        self.stats.record_cas(
            request, now, row_hit, self.channel.timings.tBURST, result
        )
        self.scheduler.on_served(request, now)
        for listener in self._listeners:
            listener.on_cas(request, now, row_hit, result)
        if not is_write and request.on_complete is not None:
            self.engine.schedule(result, request.on_complete)

    # ------------------------------------------------------------------
    # Refresh sequencing: precharge open banks, then REF.
    # ------------------------------------------------------------------
    def _progress_refresh(self, rank, now: int) -> Tuple[bool, int]:
        open_banks = self.channel.open_banks(rank.rank_id)
        if open_banks:
            ready = _FAR_FUTURE
            for bank_id, _row in open_banks:
                t = self.channel.earliest_precharge(rank.rank_id, bank_id)
                if t <= now:
                    self.channel.issue(
                        Command(
                            cycle=now,
                            kind=CommandType.PRECHARGE,
                            channel=self.channel.channel_id,
                            rank=rank.rank_id,
                            bank=bank_id,
                        )
                    )
                    gb = rank.rank_id * self._banks_per_rank + bank_id
                    self._gen += 1
                    self._dirty_read[gb] = True
                    self._dirty_write[gb] = True
                    if self._kc_on:
                        self.kc_inval_precharge += 1
                    return True, _FAR_FUTURE
                ready = min(ready, t)
            return False, ready
        ready = self.channel.earliest_refresh(rank.rank_id)
        if ready <= now:
            self.channel.issue(
                Command(
                    cycle=now,
                    kind=CommandType.REFRESH,
                    channel=self.channel.channel_id,
                    rank=rank.rank_id,
                    bank=-1,
                )
            )
            # The rank-wide REFRESH pushed every bank horizon
            # (block_until), so the cached bank_ready snapshots for this
            # rank are stale in both directions.
            self._gen += 1
            base = rank.rank_id * self._banks_per_rank
            dirty_read = self._dirty_read
            dirty_write = self._dirty_write
            for gb in range(base, base + self._banks_per_rank):
                dirty_read[gb] = True
                dirty_write[gb] = True
            self._min_refresh_due = min(
                r.next_refresh_due for r in self.channel.ranks
            )
            if self._kc_on:
                self.kc_inval_refresh += 1
            return True, _FAR_FUTURE
        return False, ready
