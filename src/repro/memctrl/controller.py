"""Per-channel memory controller.

The controller owns the read and write queues for one channel, turns the
scheduler's request ordering into legal command sequences (precharge /
activate / CAS), drains writes between watermarks, and keeps refresh on
schedule. It is event-driven: a decision event issues at most one command,
then reschedules itself either one command-bus slot later (more work ready)
or at the earliest cycle anything can become issuable (event skipping) —
never cycle by cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import ControllerConfig
from ..dram.channel import Channel
from ..dram.commands import Command, CommandType
from ..errors import SimulationError
from .request import Request
from .schedulers.base import Scheduler

_FAR_FUTURE = 1 << 62


class ControllerStats:
    """Aggregate and per-thread service statistics for one channel."""

    def __init__(self) -> None:
        self.reads_served = 0
        self.writes_served = 0
        self.row_hits = 0
        self.row_misses = 0
        self.read_latency_sum = 0
        self.per_thread_reads: Dict[int, int] = {}
        self.per_thread_writes: Dict[int, int] = {}
        self.per_thread_row_hits: Dict[int, int] = {}
        self.per_thread_latency_sum: Dict[int, int] = {}
        self.data_bus_busy = 0
        #: OS page-copy CAS commands, kept out of the performance counters
        #: above but still charged to the data bus.
        self.migration_reads = 0
        self.migration_writes = 0

    def record_cas(
        self,
        request: Request,
        now: int,
        row_hit: bool,
        burst: int,
        data_end: int,
    ) -> None:
        """Account one served CAS.

        ``data_end`` is the cycle the last data beat crosses the bus — read
        latency is measured to there, not to CAS issue, so it includes
        CL + tBURST. Migration traffic occupies the bus (and is counted as
        such) but is excluded from every performance counter, per the
        :class:`~repro.memctrl.request.Request` contract.
        """
        self.data_bus_busy += burst
        if request.is_migration:
            if request.is_write:
                self.migration_writes += 1
            else:
                self.migration_reads += 1
            return
        thread = request.thread_id
        if request.is_write:
            self.writes_served += 1
            self.per_thread_writes[thread] = self.per_thread_writes.get(thread, 0) + 1
        else:
            self.reads_served += 1
            self.per_thread_reads[thread] = self.per_thread_reads.get(thread, 0) + 1
            latency = data_end - request.arrival
            self.read_latency_sum += latency
            self.per_thread_latency_sum[thread] = (
                self.per_thread_latency_sum.get(thread, 0) + latency
            )
        if row_hit:
            self.row_hits += 1
            self.per_thread_row_hits[thread] = (
                self.per_thread_row_hits.get(thread, 0) + 1
            )
        else:
            self.row_misses += 1

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class ChannelController:
    """Scheduler-driven command issue for one channel."""

    def __init__(
        self,
        channel: Channel,
        config: ControllerConfig,
        scheduler: Scheduler,
        engine,
    ) -> None:
        self.channel = channel
        self.config = config
        self.scheduler = scheduler
        self.engine = engine
        self.read_queue: List[Request] = []
        self.write_queue: List[Request] = []
        self._write_drain = False
        self._next_decision: Optional[int] = None
        self.stats = ControllerStats()
        self._listeners: List[object] = []
        scheduler.attach_controller(self)
        if config.refresh_enabled:
            first_due = min(r.next_refresh_due for r in channel.ranks)
            self._request_decision(first_due)

    # ------------------------------------------------------------------
    # Observability (pull model: reads the stat counters, post-run).
    # ------------------------------------------------------------------
    def collect_metrics(self, registry) -> None:
        """Export this controller's service statistics into a registry."""
        channel = str(self.channel.channel_id)
        stats = self.stats
        served = registry.counter(
            "repro_ctrl_requests_served_total",
            "Demand CAS commands served, by operation",
        )
        served.inc(stats.reads_served, channel=channel, op="read")
        served.inc(stats.writes_served, channel=channel, op="write")
        rows = registry.counter(
            "repro_ctrl_row_outcomes_total",
            "Row-buffer outcome of each demand CAS",
        )
        rows.inc(stats.row_hits, channel=channel, outcome="hit")
        rows.inc(stats.row_misses, channel=channel, outcome="miss")
        migration = registry.counter(
            "repro_ctrl_migration_cas_total",
            "Page-copy CAS commands (excluded from demand counters)",
        )
        migration.inc(stats.migration_reads, channel=channel, op="read")
        migration.inc(stats.migration_writes, channel=channel, op="write")
        registry.counter(
            "repro_ctrl_data_bus_busy_cycles_total",
            "CPU cycles the data bus spent transferring bursts",
        ).inc(stats.data_bus_busy, channel=channel)
        depth = registry.gauge(
            "repro_ctrl_queue_depth", "Requests queued at collect time"
        )
        depth.set(len(self.read_queue), channel=channel, queue="read")
        depth.set(len(self.write_queue), channel=channel, queue="write")
        per_thread = registry.counter(
            "repro_ctrl_thread_requests_total",
            "Demand requests served per thread",
        )
        latency = registry.histogram(
            "repro_ctrl_thread_mean_read_latency_cycles",
            "Per-thread mean read latency (one observation per thread)",
        )
        threads = set(stats.per_thread_reads) | set(stats.per_thread_writes)
        for thread_id in sorted(threads):
            reads = stats.per_thread_reads.get(thread_id, 0)
            writes = stats.per_thread_writes.get(thread_id, 0)
            per_thread.inc(
                reads, channel=channel, thread=str(thread_id), op="read"
            )
            per_thread.inc(
                writes, channel=channel, thread=str(thread_id), op="write"
            )
            if reads:
                latency.observe(
                    stats.per_thread_latency_sum.get(thread_id, 0) / reads,
                    channel=channel,
                )

    # ------------------------------------------------------------------
    # External surface.
    # ------------------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Register a profiling listener (on_arrival / on_cas hooks)."""
        self._listeners.append(listener)

    def enqueue(self, request: Request, now: int) -> None:
        """Accept a request into the appropriate queue at cycle ``now``."""
        if request.loc.channel != self.channel.channel_id:
            raise SimulationError(
                f"request for channel {request.loc.channel} sent to "
                f"controller {self.channel.channel_id}"
            )
        queue = self.write_queue if request.is_write else self.read_queue
        queue.append(request)
        self.scheduler.on_arrival(request, now)
        for listener in self._listeners:
            listener.on_arrival(request, now)
        self._request_decision(now)

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (both directions)."""
        return len(self.read_queue) + len(self.write_queue)

    # ------------------------------------------------------------------
    # Decision scheduling (stale-event pattern on the shared engine).
    # ------------------------------------------------------------------
    def _request_decision(self, cycle: int) -> None:
        if self._next_decision is not None and self._next_decision <= cycle:
            return
        self._next_decision = cycle
        self.engine.schedule(cycle, self._on_decision_event)

    def _on_decision_event(self, now: int) -> None:
        if self._next_decision != now:
            return  # superseded by an earlier decision request
        self._next_decision = None
        self._decide(now)

    # ------------------------------------------------------------------
    # The decision: issue at most one command at `now`.
    # ------------------------------------------------------------------
    def _decide(self, now: int) -> None:
        self._update_drain_mode()
        issued, next_event = self._try_issue(now)
        if issued:
            refresh_pending = any(
                r.refresh_pending(now) for r in self.channel.ranks
            )
            more_work = self.pending_requests or refresh_pending
            if not more_work and self.config.page_policy == "closed":
                # Stay awake to close rows left open by the last requests.
                more_work = any(
                    rank.open_row_count() for rank in self.channel.ranks
                )
            if more_work:
                self._request_decision(now + self.channel.clock_ratio)
            else:
                self._schedule_refresh_wake()
        elif next_event < _FAR_FUTURE:
            self._request_decision(next_event)
        else:
            self._schedule_refresh_wake()

    def _schedule_refresh_wake(self) -> None:
        if not self.config.refresh_enabled:
            return
        due = min(r.next_refresh_due for r in self.channel.ranks)
        self._request_decision(due)

    def _update_drain_mode(self) -> None:
        writes = len(self.write_queue)
        if not self._write_drain and writes >= self.config.write_high_watermark:
            self._write_drain = True
        elif self._write_drain and (
            writes <= self.config.write_low_watermark or not self.write_queue
        ):
            self._write_drain = False

    def _try_issue(self, now: int) -> Tuple[bool, int]:
        """Issue the best legal command at ``now``; returns (issued, next_t)."""
        next_event = _FAR_FUTURE
        # 1. Refresh has absolute priority on its rank.
        refresh_ranks = [
            r for r in self.channel.ranks if r.refresh_pending(now)
        ]
        for rank in refresh_ranks:
            issued, ready = self._progress_refresh(rank, now)
            if issued:
                return True, _FAR_FUTURE
            next_event = min(next_event, ready)
        blocked_ranks = {r.rank_id for r in refresh_ranks}
        # 2. Pick the active queue.
        if self._write_drain:
            active, is_write = self.write_queue, True
        elif self.read_queue:
            active, is_write = self.read_queue, False
        elif self.write_queue:
            active, is_write = self.write_queue, True
        else:
            if self.config.page_policy == "closed":
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                next_event = min(next_event, ready)
            return False, next_event
        # 3. Best request per bank under the scheduler's ordering. This is
        # the simulator's hottest loop: thread-level schedulers expose a
        # per-thread priority prefix so key() need not run per request.
        best_per_bank: Dict[Tuple, Tuple] = {}
        ranks = self.channel.ranks
        scheduler = self.scheduler
        prefixes: Dict[int, Optional[Tuple]] = {}
        for request in active:
            rank_id = request.rank
            if rank_id in blocked_ranks:
                continue
            bank = ranks[rank_id].banks[request.bank]
            row_hit = bank.open_row == request.row
            if is_write:
                # Writes drain row-hit-first regardless of policy.
                key = (0 if row_hit else 1, request.arrival, request.req_id)
            else:
                thread_id = request.thread_id
                if thread_id in prefixes:
                    prefix = prefixes[thread_id]
                else:
                    prefix = scheduler.thread_priority(thread_id, now)
                    prefixes[thread_id] = prefix
                if prefix is None:
                    key = scheduler.key(request, row_hit, now)
                else:
                    key = prefix + (
                        0 if row_hit else 1,
                        request.arrival,
                        request.req_id,
                    )
            bank_key = (rank_id, request.bank)
            slot = best_per_bank.get(bank_key)
            if slot is None or key < slot[0]:
                best_per_bank[bank_key] = (key, request, row_hit)
        # 4. Among per-bank candidates, find the best one issuable now.
        best_choice = None
        for key, request, row_hit in best_per_bank.values():
            command, ready = self._next_command_for(request, row_hit, now)
            if ready <= now:
                if best_choice is None or key < best_choice[0]:
                    best_choice = (key, request, command, row_hit)
            else:
                next_event = min(next_event, ready)
        if best_choice is None:
            if self.config.page_policy == "closed":
                issued, ready = self._close_stale_rows(now, blocked_ranks)
                if issued:
                    return True, _FAR_FUTURE
                next_event = min(next_event, ready)
            return False, next_event
        _key, request, command, _row_hit = best_choice
        self._issue_command(request, command, now, is_write)
        return True, _FAR_FUTURE

    def _close_stale_rows(self, now: int, blocked_ranks) -> Tuple[bool, int]:
        """Closed-page policy: precharge open banks no queued request wants.

        Real work always takes priority — this only runs when nothing else
        was issuable this cycle.
        """
        wanted: Dict[Tuple, set] = {}
        for request in self.read_queue:
            wanted.setdefault(request.bank_key, set()).add(request.loc.row)
        for request in self.write_queue:
            wanted.setdefault(request.bank_key, set()).add(request.loc.row)
        ready = _FAR_FUTURE
        for rank in self.channel.ranks:
            if rank.rank_id in blocked_ranks:
                continue
            for bank_id, open_row in self.channel.open_banks(rank.rank_id):
                key = (self.channel.channel_id, rank.rank_id, bank_id)
                if open_row in wanted.get(key, ()):  # still useful
                    continue
                t = self.channel.earliest_precharge(rank.rank_id, bank_id)
                if t <= now:
                    self.channel.issue(
                        Command(
                            cycle=now,
                            kind=CommandType.PRECHARGE,
                            channel=self.channel.channel_id,
                            rank=rank.rank_id,
                            bank=bank_id,
                        )
                    )
                    return True, _FAR_FUTURE
                ready = min(ready, t)
        return False, ready

    def _next_command_for(
        self, request: Request, row_hit: bool, now: int
    ) -> Tuple[CommandType, int]:
        rank, bank_id = request.rank, request.bank
        bank = self.channel.ranks[rank].banks[bank_id]
        if row_hit:
            ready = self.channel.earliest_cas(rank, bank_id, request.is_write)
            kind = CommandType.WRITE if request.is_write else CommandType.READ
            return kind, ready
        if bank.open_row is None:
            return CommandType.ACTIVATE, self.channel.earliest_activate(
                rank, bank_id
            )
        return CommandType.PRECHARGE, self.channel.earliest_precharge(
            rank, bank_id
        )

    def _issue_command(
        self, request: Request, kind: CommandType, now: int, is_write: bool
    ) -> None:
        command = Command(
            cycle=now,
            kind=kind,
            channel=self.channel.channel_id,
            rank=request.rank,
            bank=request.bank,
            row=request.row if kind is CommandType.ACTIVATE else -1,
            thread_id=request.thread_id,
        )
        result = self.channel.issue(command)
        if kind is CommandType.ACTIVATE:
            request.needed_activate = True
            return
        if kind is CommandType.PRECHARGE:
            return
        # CAS: the request is served.
        queue = self.write_queue if is_write else self.read_queue
        queue.remove(request)
        request.served_at = now
        row_hit = not request.needed_activate
        self.stats.record_cas(
            request, now, row_hit, self.channel.timings.tBURST, result
        )
        self.scheduler.on_served(request, now)
        for listener in self._listeners:
            listener.on_cas(request, now, row_hit, result)
        if not is_write and request.on_complete is not None:
            self.engine.schedule(result, request.on_complete)

    # ------------------------------------------------------------------
    # Refresh sequencing: precharge open banks, then REF.
    # ------------------------------------------------------------------
    def _progress_refresh(self, rank, now: int) -> Tuple[bool, int]:
        open_banks = self.channel.open_banks(rank.rank_id)
        if open_banks:
            ready = _FAR_FUTURE
            for bank_id, _row in open_banks:
                t = self.channel.earliest_precharge(rank.rank_id, bank_id)
                if t <= now:
                    self.channel.issue(
                        Command(
                            cycle=now,
                            kind=CommandType.PRECHARGE,
                            channel=self.channel.channel_id,
                            rank=rank.rank_id,
                            bank=bank_id,
                        )
                    )
                    return True, _FAR_FUTURE
                ready = min(ready, t)
            return False, ready
        ready = self.channel.earliest_refresh(rank.rank_id)
        if ready <= now:
            self.channel.issue(
                Command(
                    cycle=now,
                    kind=CommandType.REFRESH,
                    channel=self.channel.channel_id,
                    rank=rank.rank_id,
                    bank=-1,
                )
            )
            return True, _FAR_FUTURE
        return False, ready
