"""Memory controller: per-channel queues, command scheduling, write drain.

The controller translates queued :class:`~repro.memctrl.request.Request`
objects into legal DRAM command sequences. *Which* request to serve next is
delegated to a pluggable :class:`~repro.memctrl.schedulers.base.Scheduler`
(FCFS, FR-FCFS, PAR-BS, ATLAS, TCM); *how* to serve it — precharge/activate/
CAS sequencing, write drain, refresh — is the controller's job and identical
under every policy, which is what makes scheduler comparisons fair.
"""

from .request import Request
from .controller import ChannelController
from .schedulers import make_scheduler, Scheduler

__all__ = ["Request", "ChannelController", "make_scheduler", "Scheduler"]
