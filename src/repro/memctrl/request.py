"""Memory request objects flowing between cores and the controller."""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..mapping import MemLocation

_request_ids = itertools.count()


class Request:
    """One cache-line DRAM access.

    ``on_complete`` (reads only) is invoked with the cycle at which the last
    data beat arrives. ``is_migration`` marks OS page-copy traffic so that it
    is excluded from per-thread performance accounting while still occupying
    real bank and bus time.
    """

    __slots__ = (
        "req_id",
        "thread_id",
        "is_write",
        "line_addr",
        "loc",
        "rank",
        "bank",
        "row",
        "bank_key",
        "arrival",
        "on_complete",
        "is_migration",
        "needed_activate",
        "served_at",
    )

    def __init__(
        self,
        thread_id: int,
        is_write: bool,
        line_addr: int,
        loc: MemLocation,
        arrival: int,
        on_complete: Optional[Callable[[int], None]] = None,
        is_migration: bool = False,
    ) -> None:
        self.req_id = next(_request_ids)
        self.thread_id = thread_id
        self.is_write = is_write
        self.line_addr = line_addr
        self.loc = loc
        # Flattened coordinates: the controller's scan loop is the hottest
        # code in the simulator, and attribute chains through `loc` cost.
        self.rank = loc.rank
        self.bank = loc.bank
        self.row = loc.row
        # (channel, rank, bank), precomputed: the runtime profiler reads it
        # on every arrival and every served CAS.
        self.bank_key = (loc.channel, loc.rank, loc.bank)
        self.arrival = arrival
        self.on_complete = on_complete
        self.is_migration = is_migration
        self.needed_activate = False  # set if an ACT was issued for it
        self.served_at: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"Request#{self.req_id}({kind} t{self.thread_id} "
            f"ch{self.loc.channel}/rk{self.loc.rank}/bk{self.loc.bank}/"
            f"row{self.loc.row} @{self.arrival})"
        )
