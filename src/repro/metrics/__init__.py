"""System-level performance and fairness metrics, plus the simulator-wide
metrics registry (see :mod:`repro.metrics.registry`)."""

from .metrics import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    summarize,
    MetricSummary,
    weighted_speedup,
)
from .kernelstats import kernel_counter_summary, render_kernel_summary
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)

__all__ = [
    "kernel_counter_summary",
    "render_kernel_summary",
    "weighted_speedup",
    "harmonic_speedup",
    "max_slowdown",
    "slowdowns",
    "summarize",
    "MetricSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_text",
]
