"""System-level performance and fairness metrics, plus the simulator-wide
metrics registry (see :mod:`repro.metrics.registry`)."""

from .metrics import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    summarize,
    MetricSummary,
    weighted_speedup,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)

__all__ = [
    "weighted_speedup",
    "harmonic_speedup",
    "max_slowdown",
    "slowdowns",
    "summarize",
    "MetricSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_text",
]
