"""System-level performance and fairness metrics."""

from .metrics import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    summarize,
    MetricSummary,
    weighted_speedup,
)

__all__ = [
    "weighted_speedup",
    "harmonic_speedup",
    "max_slowdown",
    "slowdowns",
    "summarize",
    "MetricSummary",
]
