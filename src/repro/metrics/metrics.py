"""The three metrics the paper reports.

* **Weighted speedup** (system throughput): sum over threads of
  ``IPC_shared / IPC_alone``.
* **Maximum slowdown** (unfairness): max over threads of
  ``IPC_alone / IPC_shared`` — lower is fairer. "Improving fairness by X%"
  in the abstract means reducing maximum slowdown by X%.
* **Harmonic speedup** (balance of throughput and fairness): the harmonic
  mean of per-thread speedups times the thread count, i.e.
  ``N / sum(IPC_alone / IPC_shared)``.

All functions take parallel per-thread mappings of alone-run and shared-run
IPCs keyed by thread id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


def _check(alone: Mapping[int, float], shared: Mapping[int, float]) -> None:
    if not alone:
        raise ValueError("no threads to compute metrics over")
    if set(alone) != set(shared):
        raise ValueError(
            f"thread sets differ: {sorted(alone)} vs {sorted(shared)}"
        )
    for thread_id, ipc in alone.items():
        if ipc <= 0:
            raise ValueError(f"thread {thread_id}: alone IPC must be positive")
    for thread_id, ipc in shared.items():
        if ipc <= 0:
            raise ValueError(f"thread {thread_id}: shared IPC must be positive")


def slowdowns(
    alone: Mapping[int, float], shared: Mapping[int, float]
) -> Dict[int, float]:
    """Per-thread slowdown: alone IPC over shared IPC (>= 1 normally)."""
    _check(alone, shared)
    return {t: alone[t] / shared[t] for t in alone}


def weighted_speedup(
    alone: Mapping[int, float], shared: Mapping[int, float]
) -> float:
    """System throughput: sum of per-thread speedups."""
    _check(alone, shared)
    return sum(shared[t] / alone[t] for t in alone)


def max_slowdown(
    alone: Mapping[int, float], shared: Mapping[int, float]
) -> float:
    """Unfairness: the worst per-thread slowdown (lower is fairer)."""
    return max(slowdowns(alone, shared).values())


def harmonic_speedup(
    alone: Mapping[int, float], shared: Mapping[int, float]
) -> float:
    """Harmonic mean of speedups scaled by thread count."""
    downs = slowdowns(alone, shared)
    return len(downs) / sum(downs.values())


@dataclass(frozen=True)
class MetricSummary:
    """All three metrics for one run."""

    weighted_speedup: float
    harmonic_speedup: float
    max_slowdown: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WS={self.weighted_speedup:.3f} "
            f"HS={self.harmonic_speedup:.3f} "
            f"MS={self.max_slowdown:.3f}"
        )


def summarize(
    alone: Mapping[int, float], shared: Mapping[int, float]
) -> MetricSummary:
    """Compute every headline metric at once."""
    return MetricSummary(
        weighted_speedup=weighted_speedup(alone, shared),
        harmonic_speedup=harmonic_speedup(alone, shared),
        max_slowdown=max_slowdown(alone, shared),
    )
