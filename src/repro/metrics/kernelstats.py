"""Digest the fast-kernel introspection counters out of a snapshot.

The flight-recorder counters (``repro_kernel_*``) are plain ints bumped
inside the fast decision kernel and exported through the metrics
registry after a run.  This module turns a registry *snapshot* — live
or one persisted in ``RunResult.metrics_snapshot`` — into the derived
quantities that actually explain kernel behaviour: the wake-memo
short-circuit ratio (the headline ~2/3 figure from the kernel rebuild),
best-memo hit rates, mean bucket scan lengths, and the invalidation
cause mix.  ``repro-dbp perf`` renders the result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["kernel_counter_summary", "render_kernel_summary"]


def _series(snapshot: Dict[str, object], name: str) -> List[Dict[str, object]]:
    for metric in snapshot.get("metrics", []):
        if metric.get("name") == name:
            return metric.get("samples", [])
    return []


def _total(
    snapshot: Dict[str, object], name: str, **match: str
) -> float:
    """Sum a metric's samples across channels, filtered by labels."""
    total = 0.0
    for sample in _series(snapshot, name):
        labels = sample.get("labels", {})
        if all(labels.get(k) == v for k, v in match.items()):
            total += sample.get("value", 0)
    return total


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    if denominator <= 0:
        return None
    return numerator / denominator


def kernel_counter_summary(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Derived kernel statistics from one metrics snapshot.

    All ratios are ``None`` (rather than zero) when their denominator is
    empty — a reference-kernel run reports a structurally identical
    summary with every count at zero and every ratio ``None``.
    """
    decisions = _total(snapshot, "repro_kernel_decisions_total")
    wake_hits = _total(
        snapshot, "repro_kernel_wake_memo_total", result="hit"
    )
    wake_misses = _total(
        snapshot, "repro_kernel_wake_memo_total", result="miss"
    )
    scans = _total(snapshot, "repro_kernel_scans_total")
    best_hits = _total(
        snapshot, "repro_kernel_best_memo_total", result="hit"
    )
    best_misses = _total(
        snapshot, "repro_kernel_best_memo_total", result="miss"
    )
    scanned = _total(snapshot, "repro_kernel_scanned_requests_total")
    floor_computed = _total(
        snapshot, "repro_kernel_cas_floor_total", result="computed"
    )
    floor_skipped = _total(
        snapshot, "repro_kernel_cas_floor_total", result="skipped"
    )
    causes: Dict[str, float] = {
        cause: 0.0
        for cause in (
            "enqueue", "activate", "precharge", "cas", "refresh", "token"
        )
    }
    for sample in _series(snapshot, "repro_kernel_invalidations_total"):
        cause = sample.get("labels", {}).get("cause")
        if cause is not None:
            causes[cause] = causes.get(cause, 0) + sample.get("value", 0)
    agenda_peak = _total(snapshot, "repro_kernel_agenda_peak")
    return {
        "decisions": int(decisions),
        "wake_memo": {
            "hits": int(wake_hits),
            "misses": int(wake_misses),
            # A hit issues with no bucket scan at all. The ratio is over
            # memo-armed decisions (hit + miss): decisions where no memo
            # was armed (first visit after invalidation) go straight to a
            # scan and belong to neither bucket. This is the ~2/3 figure
            # from the kernel rebuild.
            "short_circuit_ratio": _ratio(wake_hits, wake_hits + wake_misses),
            "decision_share": _ratio(wake_hits, decisions),
        },
        "scans": int(scans),
        "best_memo": {
            "hits": int(best_hits),
            "misses": int(best_misses),
            "hit_rate": _ratio(best_hits, best_hits + best_misses),
        },
        "scanned_requests": int(scanned),
        "mean_scan_length": _ratio(scanned, best_misses),
        "cas_floor": {
            "computed": int(floor_computed),
            "skipped": int(floor_skipped),
            "skip_rate": _ratio(
                floor_skipped, floor_computed + floor_skipped
            ),
        },
        "invalidations": {k: int(v) for k, v in sorted(causes.items())},
        "agenda_peak": int(agenda_peak),
    }


def _pct(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{100 * value:.1f}%"


def _num(value: Optional[float], fmt: str = "{:.1f}") -> str:
    return "n/a" if value is None else fmt.format(value)


def render_kernel_summary(summary: Dict[str, object]) -> str:
    """Human-readable report for ``repro-dbp perf``."""
    wake = summary["wake_memo"]
    best = summary["best_memo"]
    floor = summary["cas_floor"]
    lines = [
        "kernel introspection counters",
        f"  decisions                 {summary['decisions']:>12,}",
        f"  wake-memo short-circuits  {wake['hits']:>12,}  "
        f"({_pct(wake['short_circuit_ratio'])} of memo-armed decisions, "
        f"{_pct(wake['decision_share'])} of all)",
        f"  wake-memo misses          {wake['misses']:>12,}",
        f"  full bucket scans         {summary['scans']:>12,}",
        f"  best-memo hits            {best['hits']:>12,}  "
        f"({_pct(best['hit_rate'])} of bank visits)",
        f"  best-memo misses          {best['misses']:>12,}",
        f"  requests rescanned        {summary['scanned_requests']:>12,}  "
        f"(mean {_num(summary['mean_scan_length'])} per dirty bank)",
        f"  cas floors computed       {floor['computed']:>12,}",
        f"  cas floors reused         {floor['skipped']:>12,}  "
        f"({_pct(floor['skip_rate'])} skip rate)",
        f"  agenda depth high-water   {summary['agenda_peak']:>12,}",
        "  best-memo invalidations by cause:",
    ]
    for cause, count in summary["invalidations"].items():
        lines.append(f"    {cause:<10} {count:>12,}")
    return "\n".join(lines)
