"""Simulator-wide metrics registry: counters, gauges, histograms with labels.

The registry is a *pull*-model instrument set, in the Prometheus mold but
with a crucial difference: nothing in the simulator's hot path touches it.
Components keep their cheap native ``stat_*`` counters during the run, and
each exposes a ``collect_metrics(registry)`` method that translates those
counters into labelled instruments *after* (or between) runs. That keeps
the disabled-telemetry cost model intact — collection is O(components),
on demand, and fully deterministic.

Two consumable forms:

* :meth:`MetricsRegistry.snapshot` — a deterministic, JSON-safe dict
  (metrics sorted by name, samples sorted by label values) suitable for
  `RunResult.metrics_snapshot` and the result store;
* :func:`prometheus_text` — the Prometheus text exposition format,
  rendered from a *snapshot* (not the live registry) so stored snapshots
  round-trip through ``repro-dbp metrics`` without re-simulating.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Default bucket upper bounds (CPU cycles) for latency histograms:
#: powers of two, open-ended last bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << i) for i in range(4, 13)
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ConfigError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared machinery of one named instrument family."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        self.name = _check_name(name)
        self.help = help
        self._samples: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _sample_docs(self) -> List[Dict[str, object]]:
        docs = []
        for key in sorted(self._samples):
            docs.append(
                {"labels": dict(key), "value": self._samples[key]}
            )
        return docs

    def to_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "samples": self._sample_docs(),
        }


class Counter(_Metric):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0)


class Gauge(_Metric):
    """Point-in-time value (per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = value

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket histogram (per label set).

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        state = self._samples.get(key)
        if state is None:
            state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0}
            self._samples[key] = state
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state["counts"][index] += 1
        state["sum"] += value

    def _sample_docs(self) -> List[Dict[str, object]]:
        docs = []
        for key in sorted(self._samples):
            state = self._samples[key]
            counts = state["counts"]
            cumulative = []
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                cumulative.append([bound, running])
            total = running + counts[-1]
            docs.append(
                {
                    "labels": dict(key),
                    "buckets": cumulative,
                    "sum": state["sum"],
                    "count": total,
                }
            )
        return docs


class MetricsRegistry:
    """Named instruments, get-or-create, deterministic snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe, deterministic dump of every instrument."""
        return {
            "metrics": [
                self._metrics[name].to_doc()
                for name in sorted(self._metrics)
            ]
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition (rendered from snapshots, not live registries,
# so stored RunResult.metrics_snapshot dicts export identically).
# ---------------------------------------------------------------------------
def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash first — escaping it last would corrupt the escapes the
    other two replacements just produced.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Dict[str, str], extra: Optional[Tuple] = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list):
        raise ConfigError("not a metrics snapshot (missing 'metrics' list)")
    lines: List[str] = []
    for doc in metrics:
        name = doc["name"]
        kind = doc.get("kind", "untyped")
        help_text = doc.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in doc.get("samples", []):
            labels = sample.get("labels", {})
            if kind == "histogram":
                running = 0
                for bound, cumulative in sample["buckets"]:
                    running = cumulative
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, ('le', _format_value(float(bound))))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(labels, ('le', '+Inf'))}"
                    f" {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"
