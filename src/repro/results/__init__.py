"""Result service: SQLite index, derived views, A/B diffing, gates.

This package layers queryability and verification over the campaign
subsystem's content-addressed JSON blob store (which stays the source of
truth — ``STORE_VERSION`` and run keys are untouched):

* :mod:`~repro.results.db`      — the SQLite index (``index.sqlite``
  beside the blobs): incremental sync, multi-process-safe idempotent
  upserts, filtered row queries;
* :mod:`~repro.results.views`   — derived views: cell-matched approach
  pair deltas, per-approach rollups, intensity-class breakdowns;
* :mod:`~repro.results.compare` — A/B diffing of two campaigns or store
  snapshots into a ``compare_summary`` with regressions flagged;
* :mod:`~repro.results.gates`   — declarative acceptance gates encoding
  the paper's C1-C3 shape claims as winner/sign/magnitude-ordering
  predicates, with machine-readable pass/fail reports;
* :mod:`~repro.results.observatory` — the perf-regression observatory:
  ``benchmarks/BENCH_*.json`` trajectories ingested into bench tables in
  the same index, with ratio/throughput regression flagging
  (``repro-dbp results perf-trend``).

Entry points: the ``repro-dbp results index|query|compare|gates`` CLI and
``repro-dbp campaign --gates``; the store itself keeps the index fresh by
upserting on every ``put``.
"""

from .db import (
    INDEX_FILENAME,
    SCHEMA_VERSION,
    ResultIndex,
    ResultsError,
    SyncReport,
    index_outcomes,
    index_path_for,
    open_index,
    row_from_doc,
)
from .views import (
    METRICS,
    PairDeltas,
    approach_rollup,
    gain_pct,
    geomean,
    intensity_breakdown,
    pair_deltas,
    render_intensity,
    render_pair_deltas,
    render_rollup,
)
from .compare import CompareSummary, compare_indexes, render_compare
from .observatory import (
    BENCH_SCHEMA_VERSION,
    BenchSample,
    RegressionFinding,
    bench_samples_from_doc,
    bench_trend,
    check_bench_docs,
    load_bench_docs,
    render_findings,
    render_trend,
    sync_bench_dir,
)
from .gates import (
    PAPER_GATES,
    DeltaGate,
    GateCheck,
    GatesReport,
    OrderingGate,
    evaluate_gates,
    gate_from_dict,
    gate_to_dict,
    load_gates_file,
)

__all__ = [
    "INDEX_FILENAME",
    "SCHEMA_VERSION",
    "ResultIndex",
    "ResultsError",
    "SyncReport",
    "index_outcomes",
    "index_path_for",
    "open_index",
    "row_from_doc",
    "METRICS",
    "PairDeltas",
    "approach_rollup",
    "gain_pct",
    "geomean",
    "intensity_breakdown",
    "pair_deltas",
    "render_intensity",
    "render_pair_deltas",
    "render_rollup",
    "CompareSummary",
    "compare_indexes",
    "render_compare",
    "BENCH_SCHEMA_VERSION",
    "BenchSample",
    "RegressionFinding",
    "bench_samples_from_doc",
    "bench_trend",
    "check_bench_docs",
    "load_bench_docs",
    "render_findings",
    "render_trend",
    "sync_bench_dir",
    "PAPER_GATES",
    "DeltaGate",
    "GateCheck",
    "GatesReport",
    "OrderingGate",
    "evaluate_gates",
    "gate_from_dict",
    "gate_to_dict",
    "load_gates_file",
]
