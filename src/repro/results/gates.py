"""Declarative acceptance gates for the paper's headline claims.

EXPERIMENTS.md "Headline claims" names three shape claims:

* **C1** — DBP vs EBP: higher weighted speedup, lower maximum slowdown;
* **C2** — DBP-TCM vs TCM: lower maximum slowdown without giving up
  meaningful throughput;
* **C3** — DBP-TCM vs MCP: higher weighted speedup *and* lower maximum
  slowdown, with effect sizes ordered above C1/C2's.

A gate turns one such sentence into a machine-checkable predicate over
the derived views. Two predicate kinds form the grammar:

* :class:`DeltaGate` — "``better`` beats ``baseline`` on ``metric`` by at
  least ``min_gain_pct``", at one of three scopes: ``gmean`` (the
  geomean over all matched cells), ``per_mix`` (every mix, seeds
  geomean-aggregated), or ``per_cell`` (every single (mix, seed,
  horizon) cell — e.g. "DBP beats EBP on MS for every seed");
* :class:`OrderingGate` — "the ``hi`` pair's gmean gain on ``metric`` is
  at least the ``lo`` pair's" (a magnitude ordering, e.g. C3's WS gain
  exceeding C1's).

Positive gains always mean "better" (WS/HS: percent increase; MS:
percent reduction — see :func:`repro.results.views.gain_pct`). A gate
whose approaches have no matched cells in the index reports ``skipped``
rather than failing, so a campaign that only ran the C1 grid can still
gate on C1; ``--strict`` callers may treat skips as failures.

Gates are data: :func:`gate_from_dict`/:func:`gate_to_dict` round-trip
them through JSON, so a project can keep custom gate files next to its
campaigns and evaluate them with ``repro-dbp results gates --gates-file``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .db import ResultIndex, ResultsError
from .views import PairDeltas, pair_deltas

#: Valid DeltaGate scopes.
SCOPES = ("gmean", "per_mix", "per_cell")


@dataclass(frozen=True)
class DeltaGate:
    """``better`` must beat ``baseline`` on ``metric`` at ``scope``."""

    name: str
    claim: str
    metric: str  # "ws" | "hs" | "ms"
    better: str
    baseline: str
    scope: str = "gmean"
    #: The gain must strictly exceed this (percent). 0.0 = "must win";
    #: negative values express a floor ("loses at most that much").
    min_gain_pct: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ResultsError(
                f"gate {self.name!r}: unknown scope {self.scope!r} "
                f"(valid: {', '.join(SCOPES)})"
            )
        if self.metric not in ("ws", "hs", "ms"):
            raise ResultsError(
                f"gate {self.name!r}: unknown metric {self.metric!r}"
            )


@dataclass(frozen=True)
class OrderingGate:
    """The ``hi`` pair's gmean gain must be >= the ``lo`` pair's."""

    name: str
    claim: str
    metric: str
    hi: Tuple[str, str]  # (better, baseline)
    lo: Tuple[str, str]
    description: str = ""

    def __post_init__(self) -> None:
        if self.metric not in ("ws", "hs", "ms"):
            raise ResultsError(
                f"gate {self.name!r}: unknown metric {self.metric!r}"
            )


Gate = Union[DeltaGate, OrderingGate]


#: The built-in gates: C1-C3 exactly as the benchmark suite asserts them
#: (bench_f2/f3/f4), so `results gates` and `pytest benchmarks/` enforce
#: one set of shape predicates. C2's throughput bound is a floor, not a
#: win — the paper trades a little WS for the fairness gain there.
PAPER_GATES: Tuple[Gate, ...] = (
    DeltaGate(
        "c1-throughput", "C1", "ws", "dbp", "ebp",
        description="DBP beats EBP on gmean weighted speedup",
    ),
    DeltaGate(
        "c1-fairness", "C1", "ms", "dbp", "ebp",
        description="DBP reduces gmean maximum slowdown vs EBP",
    ),
    DeltaGate(
        "c2-fairness", "C2", "ms", "dbp-tcm", "tcm",
        description="DBP-TCM reduces gmean maximum slowdown vs TCM",
    ),
    DeltaGate(
        "c2-throughput-floor", "C2", "ws", "dbp-tcm", "tcm",
        min_gain_pct=-2.0,
        description="DBP-TCM gives up at most 2% gmean WS vs TCM",
    ),
    DeltaGate(
        "c3-throughput", "C3", "ws", "dbp-tcm", "mcp",
        description="DBP-TCM beats MCP on gmean weighted speedup",
    ),
    DeltaGate(
        "c3-fairness", "C3", "ms", "dbp-tcm", "mcp",
        description="DBP-TCM reduces gmean maximum slowdown vs MCP",
    ),
    OrderingGate(
        "c3-over-c1-throughput", "C3", "ws",
        hi=("dbp-tcm", "mcp"), lo=("dbp", "ebp"),
        description="C3's WS gain is at least C1's",
    ),
    OrderingGate(
        "c3-over-c2-fairness", "C3", "ms",
        hi=("dbp-tcm", "mcp"), lo=("dbp-tcm", "tcm"),
        description="C3's fairness gain is at least C2's",
    ),
)


# ---------------------------------------------------------------------------
# Evaluation.
# ---------------------------------------------------------------------------
@dataclass
class GateCheck:
    """One gate's verdict against one index."""

    gate: Gate
    status: str  # "pass" | "fail" | "skipped"
    reason: str = ""
    observed: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "gate": gate_to_dict(self.gate),
            "status": self.status,
            "reason": self.reason,
            "observed": dict(self.observed),
        }


@dataclass
class GatesReport:
    """Every gate's verdict, plus the overall pass/fail."""

    checks: List[GateCheck] = field(default_factory=list)

    def with_status(self, status: str) -> List[GateCheck]:
        return [c for c in self.checks if c.status == status]

    @property
    def failed(self) -> List[GateCheck]:
        return self.with_status("fail")

    @property
    def skipped(self) -> List[GateCheck]:
        return self.with_status("skipped")

    def ok(self, *, strict: bool = False) -> bool:
        """True when no gate failed (and, with ``strict``, none skipped)."""
        if self.failed:
            return False
        return not (strict and self.skipped)

    def as_dict(self, *, strict: bool = False) -> Dict[str, object]:
        return {
            "passed": self.ok(strict=strict),
            "strict": strict,
            "counts": {
                "pass": len(self.with_status("pass")),
                "fail": len(self.failed),
                "skipped": len(self.skipped),
            },
            "checks": [c.as_dict() for c in self.checks],
        }

    def render(self) -> str:
        from ..experiments.report import render_table

        rows = []
        for check in self.checks:
            gate = check.gate
            observed = check.observed.get("gain_pct")
            rows.append(
                [
                    gate.claim,
                    gate.name,
                    _requirement(gate),
                    "-" if observed is None else f"{observed:+.2f}",
                    check.status.upper(),
                ]
            )
        table = render_table(
            ["claim", "gate", "requires", "observed %", "verdict"], rows
        )
        parts = [table]
        for check in self.checks:
            if check.status != "pass" and check.reason:
                parts.append(f"{check.status.upper()} {check.gate.name}: "
                             f"{check.reason}")
        verdict = "PASS" if self.ok() else "FAIL"
        counts = self.as_dict()["counts"]
        parts.append(
            f"gates: {verdict} ({counts['pass']} passed, "
            f"{counts['fail']} failed, {counts['skipped']} skipped)"
        )
        return "\n".join(parts)


def _requirement(gate: Gate) -> str:
    if isinstance(gate, DeltaGate):
        bound = f"> {gate.min_gain_pct:+.1f}%"
        return (
            f"{gate.better} vs {gate.baseline} {gate.metric} "
            f"{bound} [{gate.scope}]"
        )
    return (
        f"{gate.metric}: {gate.hi[0]} vs {gate.hi[1]} >= "
        f"{gate.lo[0]} vs {gate.lo[1]}"
    )


def _check_delta(gate: DeltaGate, deltas: PairDeltas) -> GateCheck:
    if not deltas.cells:
        return GateCheck(
            gate,
            "skipped",
            reason=(
                f"no matched runs for {gate.better} vs {gate.baseline}"
            ),
        )
    overall = deltas.summary_gain(gate.metric)
    observed: Dict[str, object] = {
        "gain_pct": overall,
        "matched_cells": deltas.matched,
        "scope": gate.scope,
    }
    if gate.scope == "gmean":
        worst_label, worst = "gmean", overall
    elif gate.scope == "per_mix":
        per_mix = deltas.per_mix_gains(gate.metric)
        worst_label, worst = min(per_mix.items(), key=lambda kv: kv[1])
        observed["per_mix_gains_pct"] = {
            mix: round(g, 4) for mix, g in per_mix.items()
        }
    else:  # per_cell
        gains = deltas.gains(gate.metric)
        worst_index = min(range(len(gains)), key=gains.__getitem__)
        worst = gains[worst_index]
        cell = deltas.cells[worst_index]
        worst_label = f"{cell['mix']} s{cell['seed']}"
    observed["worst"] = {"where": worst_label, "gain_pct": worst}
    if worst > gate.min_gain_pct:
        return GateCheck(gate, "pass", observed=observed)
    return GateCheck(
        gate,
        "fail",
        reason=(
            f"{gate.metric} gain at {worst_label} is {worst:+.2f}%, "
            f"needs > {gate.min_gain_pct:+.2f}%"
        ),
        observed=observed,
    )


def _check_ordering(
    gate: OrderingGate, hi: PairDeltas, lo: PairDeltas
) -> GateCheck:
    missing = [
        f"{d.better} vs {d.baseline}" for d in (hi, lo) if not d.cells
    ]
    if missing:
        return GateCheck(
            gate, "skipped",
            reason=f"no matched runs for {', '.join(missing)}",
        )
    gain_hi = hi.summary_gain(gate.metric)
    gain_lo = lo.summary_gain(gate.metric)
    observed = {
        "gain_pct": gain_hi - gain_lo,
        "hi_gain_pct": gain_hi,
        "lo_gain_pct": gain_lo,
    }
    if gain_hi >= gain_lo:
        return GateCheck(gate, "pass", observed=observed)
    return GateCheck(
        gate,
        "fail",
        reason=(
            f"{gate.metric} gain ordering violated: "
            f"{gate.hi[0]} vs {gate.hi[1]} = {gain_hi:+.2f}% < "
            f"{gate.lo[0]} vs {gate.lo[1]} = {gain_lo:+.2f}%"
        ),
        observed=observed,
    )


def evaluate_gates(
    index: ResultIndex,
    gates: Sequence[Gate] = PAPER_GATES,
    *,
    claims: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    seed: Optional[int] = None,
) -> GatesReport:
    """Evaluate gates against an index; optionally filter by claim id.

    Pair views are computed once per distinct (better, baseline) pair and
    shared across gates, so evaluating the full built-in set costs three
    index scans, not eight.
    """
    if claims is not None:
        wanted = {c.upper() for c in claims}
        gates = [g for g in gates if g.claim.upper() in wanted]
    pairs: Dict[Tuple[str, str], PairDeltas] = {}

    def pair(better: str, baseline: str) -> PairDeltas:
        key = (better, baseline)
        if key not in pairs:
            pairs[key] = pair_deltas(
                index, better, baseline, horizon=horizon, seed=seed
            )
        return pairs[key]

    report = GatesReport()
    for gate in gates:
        if isinstance(gate, DeltaGate):
            report.checks.append(
                _check_delta(gate, pair(gate.better, gate.baseline))
            )
        else:
            report.checks.append(
                _check_ordering(gate, pair(*gate.hi), pair(*gate.lo))
            )
    return report


# ---------------------------------------------------------------------------
# Gates as data (JSON round-trip).
# ---------------------------------------------------------------------------
def gate_to_dict(gate: Gate) -> Dict[str, object]:
    if isinstance(gate, DeltaGate):
        return {
            "kind": "delta",
            "name": gate.name,
            "claim": gate.claim,
            "metric": gate.metric,
            "better": gate.better,
            "baseline": gate.baseline,
            "scope": gate.scope,
            "min_gain_pct": gate.min_gain_pct,
            "description": gate.description,
        }
    return {
        "kind": "ordering",
        "name": gate.name,
        "claim": gate.claim,
        "metric": gate.metric,
        "hi": list(gate.hi),
        "lo": list(gate.lo),
        "description": gate.description,
    }


def gate_from_dict(doc: Dict[str, object]) -> Gate:
    try:
        kind = doc["kind"]
        if kind == "delta":
            return DeltaGate(
                name=str(doc["name"]),
                claim=str(doc.get("claim", "")),
                metric=str(doc["metric"]),
                better=str(doc["better"]),
                baseline=str(doc["baseline"]),
                scope=str(doc.get("scope", "gmean")),
                min_gain_pct=float(doc.get("min_gain_pct", 0.0)),
                description=str(doc.get("description", "")),
            )
        if kind == "ordering":
            hi, lo = doc["hi"], doc["lo"]
            return OrderingGate(
                name=str(doc["name"]),
                claim=str(doc.get("claim", "")),
                metric=str(doc["metric"]),
                hi=(str(hi[0]), str(hi[1])),
                lo=(str(lo[0]), str(lo[1])),
                description=str(doc.get("description", "")),
            )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise ResultsError(f"malformed gate definition: {error}") from None
    raise ResultsError(f"unknown gate kind {kind!r}")


def load_gates_file(path) -> List[Gate]:
    """Gates from a JSON file: either a list or ``{"gates": [...]}``."""
    try:
        doc = json.loads(open(path).read())
    except (OSError, ValueError) as error:
        raise ResultsError(f"cannot read gates file {path}: {error}")
    gates = doc.get("gates") if isinstance(doc, dict) else doc
    if not isinstance(gates, list) or not gates:
        raise ResultsError(
            f"gates file {path} holds no gate list"
        )
    return [gate_from_dict(g) for g in gates]
