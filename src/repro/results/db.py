"""SQLite index over the content-addressed result store.

The blob store (:mod:`repro.campaign.store`) stays the source of truth —
one JSON entry per run, addressed by the SHA-256 of the run's input
closure. This module maintains a *derived* SQLite index beside it
(``<store>/index.sqlite`` by default) so campaigns, views, diffs, and
acceptance gates can query thousands of runs without re-reading every
blob:

* one row per store entry: the run key, the spec fields a query filters on
  (mix, approach, resolved policy/scheduler, seed, horizon, instruction
  budget), the headline metrics (WS/HS/MS), workload shape (core count,
  intensive-app count, mix category), trace digests, and the blob's mtime;
* **incremental sync** — :meth:`ResultIndex.sync` scans the blob directory
  and upserts only entries whose mtime changed, so re-indexing an
  unchanged store touches zero rows and pruning follows deletions;
* **multi-process safety** — WAL journal mode, a generous busy timeout,
  and idempotent ``INSERT .. ON CONFLICT(key) DO UPDATE`` upserts let
  several campaign hosts (and the store's own put-time hook) share one
  index file without lost or duplicated rows.

Rows are plain dicts throughout; the derived views in
:mod:`repro.results.views` and the gates in :mod:`repro.results.gates`
build on :meth:`ResultIndex.rows`.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import ReproError

#: Bump when the ``runs`` table layout changes; a mismatched index file is
#: dropped and rebuilt from the blobs (the blobs are the source of truth,
#: so rebuilding loses nothing).
SCHEMA_VERSION = 1

#: The index file maintained inside a store directory.
INDEX_FILENAME = "index.sqlite"

_COLUMNS = (
    "key", "version", "mix", "approach", "policy", "scheduler", "apps",
    "seed", "horizon", "target_insts", "num_cores", "intensive_count",
    "category", "ws", "hs", "ms", "wall_clock", "trace_digests", "mtime",
    "source",
)

_CREATE = f"""
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    version INTEGER NOT NULL,
    mix TEXT,
    approach TEXT,
    policy TEXT,
    scheduler TEXT,
    apps TEXT,
    seed INTEGER,
    horizon INTEGER,
    target_insts INTEGER,
    num_cores INTEGER,
    intensive_count INTEGER,
    category TEXT,
    ws REAL,
    hs REAL,
    ms REAL,
    wall_clock REAL,
    trace_digests TEXT,
    mtime REAL,
    source TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_grid ON runs (mix, approach, seed);
CREATE INDEX IF NOT EXISTS runs_by_approach ON runs (approach);
CREATE TABLE IF NOT EXISTS meta (name TEXT PRIMARY KEY, value TEXT);
"""


class ResultsError(ReproError):
    """The result index/views/gates layer hit an invalid input or state."""


def index_path_for(store_root) -> Path:
    """Where a store directory's index file lives."""
    return Path(store_root) / INDEX_FILENAME


@dataclass
class SyncReport:
    """What one :meth:`ResultIndex.sync` pass did."""

    scanned: int = 0
    added: int = 0
    updated: int = 0
    unchanged: int = 0
    removed: int = 0
    #: Entries whose doc version differs from the current STORE_VERSION.
    #: Indexed anyway (queries filter on version) but worth surfacing.
    stale: int = 0
    malformed: int = 0
    malformed_paths: List[str] = field(default_factory=list)

    @property
    def changed(self) -> int:
        return self.added + self.updated + self.removed

    def as_dict(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "added": self.added,
            "updated": self.updated,
            "unchanged": self.unchanged,
            "removed": self.removed,
            "stale": self.stale,
            "malformed": self.malformed,
            "malformed_paths": list(self.malformed_paths),
        }

    def render(self) -> str:
        line = (
            f"indexed {self.scanned} entr{'y' if self.scanned == 1 else 'ies'}: "
            f"{self.added} added, {self.updated} updated, "
            f"{self.unchanged} unchanged, {self.removed} removed"
        )
        if self.stale:
            line += f", {self.stale} stale-version"
        if self.malformed:
            line += f", {self.malformed} malformed (skipped)"
        return line


def row_from_doc(
    doc: Dict[str, object], *, mtime: float = 0.0, source: str = "sync"
) -> Dict[str, object]:
    """One index row from a full store document.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input —
    callers count those as malformed entries, mirroring the store's own
    decode discipline.
    """
    key = doc["key"]
    if not isinstance(key, str) or not key:
        raise ValueError("store doc has no usable key")
    version = int(doc["version"])
    spec = doc.get("spec") or {}
    if not isinstance(spec, dict):
        raise TypeError("spec must be an object")
    result = doc["result"]
    metrics = result["metrics"]
    summary = metrics["summary"]
    apps = list(metrics.get("apps") or spec.get("apps") or [])
    mix = spec.get("mix") or metrics.get("mix") or "+".join(apps)
    approach = spec.get("approach") or metrics.get("approach")
    if not approach:
        raise ValueError("store doc names no approach")
    row = {
        "key": key,
        "version": version,
        "mix": str(mix),
        "approach": str(approach),
        "policy": None,
        "scheduler": None,
        "apps": json.dumps(apps),
        "seed": _opt_int(spec.get("seed")),
        "horizon": _opt_int(spec.get("horizon")),
        "target_insts": _opt_int(spec.get("target_insts")),
        "num_cores": len(apps) or None,
        "intensive_count": None,
        "category": None,
        "ws": float(summary["weighted_speedup"]),
        "hs": float(summary["harmonic_speedup"]),
        "ms": float(summary["max_slowdown"]),
        "wall_clock": float(doc.get("wall_clock", 0.0)),
        "trace_digests": (
            json.dumps(spec["trace_digests"])
            if spec.get("trace_digests")
            else None
        ),
        "mtime": float(mtime),
        "source": source,
    }
    _annotate_registries(row, apps)
    return row


def _opt_int(value) -> Optional[int]:
    return None if value is None else int(value)


def _annotate_registries(row: Dict[str, object], apps: Sequence[str]) -> None:
    """Fill policy/scheduler/intensity/category from the live registries.

    Best-effort: an entry written by an older or extended code version may
    name approaches, apps, or mixes this process does not know — the row
    still indexes, with those columns NULL.
    """
    from ..core.integration import get_approach
    from ..errors import ConfigError
    from ..workloads.mixes import MIXES
    from ..workloads.profiles import app_intensive

    try:
        spec = get_approach(str(row["approach"]))
        row["policy"] = spec.policy
        row["scheduler"] = spec.scheduler
    except ConfigError:
        pass
    try:
        row["intensive_count"] = sum(
            1 for app in apps if app_intensive(app)
        )
    except ConfigError:
        pass
    mix = MIXES.get(str(row["mix"]))
    if mix is not None:
        row["category"] = mix.category


class ResultIndex:
    """A queryable SQLite index over store entries.

    ``path`` may be ``":memory:"`` for throwaway indexes (e.g. gating a
    single in-flight campaign without touching disk). File-backed indexes
    are safe to share between processes: every write is an idempotent
    upsert inside SQLite's WAL locking, with ``busy_timeout`` covering
    writer contention.
    """

    def __init__(
        self, path: Union[str, Path] = ":memory:", *, timeout: float = 30.0
    ) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._ensure_schema()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_schema(self) -> None:
        with self._conn:
            self._conn.executescript(_CREATE)
            # OR IGNORE: two processes initializing a fresh index race to
            # write this row; the loser must not crash on the PK.
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (name, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name='schema_version'"
            ).fetchone()
            if row["value"] != str(SCHEMA_VERSION):
                # The blobs are authoritative; a layout change just means
                # this cache rebuilds on the next sync.
                self._conn.execute("DROP TABLE IF EXISTS runs")
                self._conn.executescript(_CREATE)
                self._conn.execute(
                    "UPDATE meta SET value=? WHERE name='schema_version'",
                    (str(SCHEMA_VERSION),),
                )

    # -- writes ---------------------------------------------------------
    def upsert(self, row: Dict[str, object]) -> None:
        """Idempotently insert or refresh one run row (keyed by ``key``)."""
        values = tuple(row[name] for name in _COLUMNS)
        assignments = ", ".join(
            f"{name}=excluded.{name}" for name in _COLUMNS if name != "key"
        )
        with self._conn:
            self._conn.execute(
                f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in _COLUMNS)}) "
                f"ON CONFLICT(key) DO UPDATE SET {assignments}",
                values,
            )

    def upsert_doc(
        self, doc: Dict[str, object], *, mtime: float = 0.0,
        source: str = "put",
    ) -> None:
        """Index one full store document (the store's put-time hook)."""
        self.upsert(row_from_doc(doc, mtime=mtime, source=source))

    def remove(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        if not keys:
            return 0
        with self._conn:
            self._conn.executemany(
                "DELETE FROM runs WHERE key=?", [(k,) for k in keys]
            )
        return len(keys)

    # -- sync -----------------------------------------------------------
    def sync(self, store, *, prune: bool = True) -> SyncReport:
        """Bring the index up to date with a blob store directory.

        ``store`` is a :class:`~repro.campaign.store.ResultStore` (or any
        object with ``iter_blobs()`` and ``load_doc()``). Entries already
        indexed at the blob's current mtime are skipped without reading
        the JSON, which is what makes a no-change re-sync O(stat). With
        ``prune``, rows whose blob disappeared (e.g. a gc) are removed.
        """
        from ..campaign.store import STORE_VERSION

        report = SyncReport()
        known = {
            r["key"]: r["mtime"]
            for r in self._conn.execute("SELECT key, mtime FROM runs")
        }
        seen = set()
        for key, path in store.iter_blobs():
            report.scanned += 1
            seen.add(key)
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # raced with a concurrent gc
            if key in known and known[key] == mtime:
                report.unchanged += 1
                continue
            try:
                doc = store.load_doc(path)
                row = row_from_doc(doc, mtime=mtime, source="sync")
                if doc.get("key") != key:
                    raise ValueError("entry key does not match its path")
            except (ValueError, KeyError, TypeError):
                report.malformed += 1
                report.malformed_paths.append(str(path))
                continue
            if row["version"] != STORE_VERSION:
                report.stale += 1
            self.upsert(row)
            if key in known:
                report.updated += 1
            else:
                report.added += 1
        if prune:
            gone = [key for key in known if key not in seen]
            report.removed = self.remove(gone)
        return report

    # -- queries --------------------------------------------------------
    def rows(
        self,
        *,
        mix: Optional[str] = None,
        approach: Optional[str] = None,
        seed: Optional[int] = None,
        horizon: Optional[int] = None,
        version: Optional[int] = None,
        current_version_only: bool = True,
    ) -> List[Dict[str, object]]:
        """Indexed runs matching the filters, as plain dicts.

        By default only rows at the current ``STORE_VERSION`` are
        returned — stale-version rows stay queryable with
        ``current_version_only=False`` (or an explicit ``version``).
        """
        from ..campaign.store import STORE_VERSION

        clauses: List[str] = []
        params: List[object] = []
        if version is not None:
            clauses.append("version=?")
            params.append(int(version))
        elif current_version_only:
            clauses.append("version=?")
            params.append(STORE_VERSION)
        for name, value in (
            ("mix", mix), ("approach", approach), ("seed", seed),
            ("horizon", horizon),
        ):
            if value is not None:
                clauses.append(f"{name}=?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            "SELECT * FROM runs"
            f"{where} ORDER BY mix, approach, seed, horizon, key",
            params,
        )
        return [self._to_dict(r) for r in cursor]

    @staticmethod
    def _to_dict(row: sqlite3.Row) -> Dict[str, object]:
        out = dict(row)
        out["apps"] = json.loads(out["apps"]) if out["apps"] else []
        if out.get("trace_digests"):
            out["trace_digests"] = json.loads(out["trace_digests"])
        return out

    def count(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        )

    def approaches(self) -> List[str]:
        return [
            r[0]
            for r in self._conn.execute(
                "SELECT DISTINCT approach FROM runs ORDER BY approach"
            )
        ]

    def mixes(self) -> List[str]:
        return [
            r[0]
            for r in self._conn.execute(
                "SELECT DISTINCT mix FROM runs ORDER BY mix"
            )
        ]

    def version_counts(self) -> Dict[int, int]:
        """Row counts per entry STORE_VERSION (stale entries stand out)."""
        return {
            int(r[0]): int(r[1])
            for r in self._conn.execute(
                "SELECT version, COUNT(*) FROM runs GROUP BY version"
            )
        }


def index_outcomes(outcomes, index: Optional[ResultIndex] = None) -> ResultIndex:
    """Index a finished campaign's outcomes directly (no blob reads).

    Used by ``campaign --gates`` to evaluate acceptance gates over exactly
    the runs the campaign produced — including ``--no-store`` campaigns,
    which have no blob directory to sync from. Defaults to a fresh
    in-memory index.
    """
    from ..campaign.store import STORE_VERSION

    if index is None:
        index = ResultIndex(":memory:")
    for outcome in outcomes:
        if outcome.result is None:
            continue
        spec = outcome.spec
        summary = outcome.result.metrics.summary
        apps = list(spec.apps)
        row: Dict[str, object] = {
            "key": spec.key(),
            "version": STORE_VERSION,
            "mix": spec.mix_name or "+".join(apps),
            "approach": spec.approach,
            "policy": None,
            "scheduler": None,
            "apps": json.dumps(apps),
            "seed": spec.seed,
            "horizon": spec.horizon,
            "target_insts": spec.target_insts,
            "num_cores": len(apps),
            "intensive_count": None,
            "category": None,
            "ws": summary.weighted_speedup,
            "hs": summary.harmonic_speedup,
            "ms": summary.max_slowdown,
            "wall_clock": outcome.wall_clock,
            "trace_digests": (
                json.dumps(dict(spec.trace_digests))
                if spec.trace_digests
                else None
            ),
            "mtime": 0.0,
            "source": "campaign",
        }
        _annotate_registries(row, apps)
        index.upsert(row)
    return index


def open_index(path: Union[str, Path], *, sync: bool = False) -> ResultIndex:
    """Open an index from a path that may be a store directory or a file.

    A directory is treated as a blob store: its ``index.sqlite`` is opened
    (and created/synced when ``sync``). Anything else is opened as an
    SQLite file directly.
    """
    from ..campaign.store import ResultStore

    p = Path(path)
    if p.is_dir():
        index = ResultIndex(index_path_for(p))
        if sync:
            index.sync(ResultStore(p, index=False))
        return index
    if not p.exists():
        raise ResultsError(
            f"no index database or store directory at {p}"
        )
    return ResultIndex(p)
