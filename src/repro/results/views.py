"""Derived views over the result index.

Three queryable shapes, all built from :meth:`ResultIndex.rows`:

* :func:`pair_deltas` — per-mix WS/HS/MS deltas between an approach pair,
  matched cell-by-cell on (mix, seed, horizon, target_insts) so only runs
  with identical scope are ever compared;
* :func:`approach_rollup` — per-approach aggregates across every indexed
  run (mean/min/max and geomean of each headline metric);
* :func:`intensity_breakdown` — the same rollup split by workload
  intensity class (the mix categories of Table 3: H4, H3L1, H2L2, ...).

Gains follow the paper's conventions: throughput gain is the percent
increase in (geomean) weighted/harmonic speedup, fairness gain is the
percent *reduction* in maximum slowdown. The acceptance gates in
:mod:`repro.results.gates` evaluate their predicates on these views.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .db import ResultIndex, ResultsError

#: The metrics every view reports, in display order.
METRICS = ("ws", "hs", "ms")

#: Identity of one run cell; approaches are only ever compared when every
#: one of these scope fields matches.
CellKey = Tuple[str, object, object, object]


def _cell_key(row: Dict[str, object]) -> CellKey:
    return (
        str(row["mix"]), row["seed"], row["horizon"], row["target_insts"]
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    if not values:
        raise ResultsError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ResultsError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def gain_pct(new: float, base: float, *, metric: str) -> float:
    """Signed improvement of ``new`` over ``base`` for one metric.

    Positive always means "better": for WS/HS that is a higher value
    (percent increase); for MS it is a lower value (percent reduction —
    the paper's "fairness gain").
    """
    if base <= 0:
        raise ResultsError(f"non-positive baseline {metric}={base}")
    if metric == "ms":
        return 100.0 * (1.0 - new / base)
    return 100.0 * (new / base - 1.0)


# ---------------------------------------------------------------------------
# Pairwise deltas.
# ---------------------------------------------------------------------------
@dataclass
class PairDeltas:
    """Cell-matched comparison of ``better`` against ``baseline``."""

    better: str
    baseline: str
    #: One row per matched cell: mix/seed/horizon plus, per metric, the
    #: two raw values and the signed gain (positive = ``better`` wins).
    cells: List[Dict[str, object]] = field(default_factory=list)
    #: Cells present for only one side, by approach name.
    unmatched: Dict[str, int] = field(default_factory=dict)

    @property
    def matched(self) -> int:
        return len(self.cells)

    def gains(self, metric: str) -> List[float]:
        return [float(c[f"{metric}_gain_pct"]) for c in self.cells]

    def summary_gain(self, metric: str) -> float:
        """Overall gain from the geomean of per-cell metric ratios."""
        ratios = [
            float(c[f"{metric}_{self.better}"])
            / float(c[f"{metric}_{self.baseline}"])
            for c in self.cells
        ]
        g = geomean(ratios)
        return 100.0 * (1.0 - g) if metric == "ms" else 100.0 * (g - 1.0)

    def per_mix_gains(self, metric: str) -> Dict[str, float]:
        """Gain per mix, geomean-aggregated across seeds/horizons."""
        by_mix: Dict[str, List[Tuple[float, float]]] = {}
        for cell in self.cells:
            by_mix.setdefault(str(cell["mix"]), []).append(
                (
                    float(cell[f"{metric}_{self.better}"]),
                    float(cell[f"{metric}_{self.baseline}"]),
                )
            )
        out: Dict[str, float] = {}
        for mix, pairs in sorted(by_mix.items()):
            g = geomean([new / base for new, base in pairs])
            out[mix] = 100.0 * (1.0 - g) if metric == "ms" else 100.0 * (g - 1.0)
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "better": self.better,
            "baseline": self.baseline,
            "matched_cells": self.matched,
            "unmatched": dict(self.unmatched),
            "summary_gains_pct": {
                metric: round(self.summary_gain(metric), 4)
                for metric in METRICS
            }
            if self.cells
            else {},
            "per_mix_gains_pct": {
                metric: {
                    mix: round(g, 4)
                    for mix, g in self.per_mix_gains(metric).items()
                }
                for metric in METRICS
            }
            if self.cells
            else {},
            "cells": list(self.cells),
        }


def pair_deltas(
    index: ResultIndex,
    better: str,
    baseline: str,
    *,
    mix: Optional[str] = None,
    seed: Optional[int] = None,
    horizon: Optional[int] = None,
) -> PairDeltas:
    """Per-cell WS/HS/MS deltas of ``better`` over ``baseline``."""
    if better == baseline:
        raise ResultsError("a pair needs two distinct approaches")
    sides = {}
    for name in (better, baseline):
        sides[name] = {
            _cell_key(r): r
            for r in index.rows(
                approach=name, mix=mix, seed=seed, horizon=horizon
            )
        }
    out = PairDeltas(better=better, baseline=baseline)
    common = sorted(
        set(sides[better]) & set(sides[baseline]),
        key=lambda k: (k[0], str(k[1]), str(k[2])),
    )
    for name in (better, baseline):
        extra = len(sides[name]) - len(common)
        if extra:
            out.unmatched[name] = extra
    for key in common:
        a, b = sides[better][key], sides[baseline][key]
        cell: Dict[str, object] = {
            "mix": key[0],
            "seed": key[1],
            "horizon": key[2],
            "target_insts": key[3],
            "category": a.get("category"),
        }
        for metric in METRICS:
            new, base = float(a[metric]), float(b[metric])
            cell[f"{metric}_{better}"] = new
            cell[f"{metric}_{baseline}"] = base
            cell[f"{metric}_gain_pct"] = gain_pct(new, base, metric=metric)
        out.cells.append(cell)
    return out


def render_pair_deltas(deltas: PairDeltas) -> str:
    """The pairwise view as a per-mix text table plus a summary line."""
    from ..experiments.report import render_table

    if not deltas.cells:
        return (
            f"no matched cells for {deltas.better} vs {deltas.baseline} "
            f"(unmatched: {deltas.unmatched or 'none'})"
        )
    per_mix = {
        metric: deltas.per_mix_gains(metric) for metric in METRICS
    }
    rows = [
        [
            mix,
            round(per_mix["ws"][mix], 2),
            round(per_mix["hs"][mix], 2),
            round(per_mix["ms"][mix], 2),
        ]
        for mix in per_mix["ws"]
    ]
    rows.append(
        [
            "gmean",
            round(deltas.summary_gain("ws"), 2),
            round(deltas.summary_gain("hs"), 2),
            round(deltas.summary_gain("ms"), 2),
        ]
    )
    table = render_table(
        ["mix", "WS gain %", "HS gain %", "MS reduction %"], rows
    )
    return (
        f"{deltas.better} vs {deltas.baseline} "
        f"({deltas.matched} matched cell(s))\n{table}"
    )


# ---------------------------------------------------------------------------
# Rollups.
# ---------------------------------------------------------------------------
def _rollup(rows: List[Dict[str, object]]) -> Dict[str, object]:
    out: Dict[str, object] = {
        "runs": len(rows),
        "mixes": sorted({str(r["mix"]) for r in rows}),
        "seeds": sorted({r["seed"] for r in rows if r["seed"] is not None}),
    }
    for metric in METRICS:
        values = [float(r[metric]) for r in rows]
        out[metric] = {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "geomean": geomean(values),
        }
    return out


def approach_rollup(
    index: ResultIndex,
    approaches: Optional[Sequence[str]] = None,
    *,
    horizon: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Per-approach WS/HS/MS aggregates across every matching run."""
    names = list(approaches) if approaches else index.approaches()
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        rows = index.rows(approach=name, horizon=horizon)
        if rows:
            out[name] = _rollup(rows)
    return out


def intensity_breakdown(
    index: ResultIndex,
    approaches: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Rollups per (intensity category, approach).

    Uncategorized mixes (ad-hoc app lists, unknown registry state) group
    under ``"?"`` rather than disappearing.
    """
    names = list(approaches) if approaches else index.approaches()
    by_category: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
    for name in names:
        for row in index.rows(approach=name):
            category = str(row.get("category") or "?")
            by_category.setdefault(category, {}).setdefault(
                name, []
            ).append(row)
    return {
        category: {
            name: _rollup(rows) for name, rows in sorted(groups.items())
        }
        for category, groups in sorted(by_category.items())
    }


def render_rollup(rollup: Dict[str, Dict[str, object]]) -> str:
    from ..experiments.report import render_table

    rows = []
    for name, agg in rollup.items():
        rows.append(
            [
                name,
                agg["runs"],
                round(agg["ws"]["geomean"], 3),
                round(agg["ws"]["min"], 3),
                round(agg["ws"]["max"], 3),
                round(agg["hs"]["geomean"], 3),
                round(agg["ms"]["geomean"], 3),
                round(agg["ms"]["max"], 3),
            ]
        )
    return render_table(
        [
            "approach", "runs", "WS gmean", "WS min", "WS max",
            "HS gmean", "MS gmean", "MS max",
        ],
        rows,
    )


def render_intensity(
    breakdown: Dict[str, Dict[str, Dict[str, object]]]
) -> str:
    parts = []
    for category, groups in breakdown.items():
        parts.append(f"[{category}]")
        parts.append(render_rollup(groups))
    return "\n".join(parts)
