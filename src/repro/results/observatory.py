"""The perf-regression observatory: benchmark trajectories in the index.

The kernel benchmark (``scripts/bench_kernel.py --record``) appends one
dated entry per host/commit to ``benchmarks/BENCH_kernel.json``.  Those
snapshots are append-only JSON — fine as the source of truth, useless
for queries.  This module ingests every ``BENCH_*.json`` under a
benchmark directory into additive tables inside the result-service
SQLite index (the ``runs`` schema and ``SCHEMA_VERSION`` are untouched;
the bench tables carry their own meta key), renders the throughput
trajectory, and flags regressions:

* **ratio regressions** — an entry whose ``speedup_vs_baseline`` fell
  below the snapshot's committed CI gate (``ci.min_ratio``).  The ratio
  compares two kernels on the *same* host and run, so this check is
  host-independent.
* **trajectory regressions** — a dated entry whose best throughput
  dropped more than ``tolerance`` below the best earlier entry.
  Absolute cycles/sec only compare within one host class, so this is a
  warning-grade signal on shared runners and a hard gate on pinned
  ones.

``repro-dbp results perf-trend`` drives all three steps and exits
nonzero under ``--check`` when any regression is flagged (the CI hook).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .db import ResultIndex, ResultsError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSample",
    "RegressionFinding",
    "bench_samples_from_doc",
    "load_bench_docs",
    "sync_bench_dir",
    "bench_trend",
    "check_bench_docs",
    "render_trend",
    "render_findings",
]

#: Version of the *bench* tables only; bumping rebuilds them from the
#: JSON snapshots without disturbing the ``runs`` table.
BENCH_SCHEMA_VERSION = 1

_BENCH_CREATE = """
CREATE TABLE IF NOT EXISTS bench_samples (
    benchmark TEXT NOT NULL,
    role TEXT NOT NULL,
    date TEXT NOT NULL,
    kernel TEXT,
    cycles_per_sec_best REAL,
    cycles_per_sec_median REAL,
    speedup_vs_baseline REAL,
    engine_events INTEGER,
    source TEXT,
    PRIMARY KEY (benchmark, role, date)
);
"""


@dataclass
class BenchSample:
    """One dated measurement from a benchmark snapshot file."""

    benchmark: str
    role: str  # "baseline" | "post" | "trajectory"
    date: str
    kernel: Optional[str] = None
    cycles_per_sec_best: Optional[float] = None
    cycles_per_sec_median: Optional[float] = None
    speedup_vs_baseline: Optional[float] = None
    engine_events: Optional[int] = None
    source: str = ""

    def to_row(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "role": self.role,
            "date": self.date,
            "kernel": self.kernel,
            "cycles_per_sec_best": self.cycles_per_sec_best,
            "cycles_per_sec_median": self.cycles_per_sec_median,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "engine_events": self.engine_events,
            "source": self.source,
        }


@dataclass
class RegressionFinding:
    """One flagged regression (or structural problem) in a snapshot."""

    benchmark: str
    kind: str  # "ratio" | "trajectory"
    message: str
    date: Optional[str] = None

    def render(self) -> str:
        when = f" [{self.date}]" if self.date else ""
        return f"REGRESSION {self.benchmark}/{self.kind}{when}: {self.message}"


def _sample(
    benchmark: str, role: str, entry: Dict[str, object], source: str
) -> Optional[BenchSample]:
    date = entry.get("date")
    if not isinstance(date, str) or not date:
        return None
    best = entry.get("cycles_per_sec_best")
    return BenchSample(
        benchmark=benchmark,
        role=role,
        date=date,
        kernel=entry.get("kernel"),
        cycles_per_sec_best=float(best) if best is not None else None,
        cycles_per_sec_median=(
            float(entry["cycles_per_sec_median"])
            if entry.get("cycles_per_sec_median") is not None
            else None
        ),
        speedup_vs_baseline=(
            float(entry["speedup_vs_baseline"])
            if entry.get("speedup_vs_baseline") is not None
            else None
        ),
        engine_events=(
            int(entry["engine_events"])
            if entry.get("engine_events") is not None
            else None
        ),
        source=source,
    )


def bench_samples_from_doc(
    doc: Dict[str, object], source: str = ""
) -> List[BenchSample]:
    """Extract dated samples from one snapshot document.

    Snapshots that carry no dated series (e.g. the one-shot
    ``BENCH_results_index.json`` micro-benchmark) yield no samples —
    they are valid files, just not trajectories.
    """
    benchmark = doc.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        return []
    out: List[BenchSample] = []
    for role in ("baseline", "post"):
        entry = doc.get(role)
        if isinstance(entry, dict):
            sample = _sample(benchmark, role, entry, source)
            if sample is not None:
                out.append(sample)
    trajectory = doc.get("trajectory")
    if isinstance(trajectory, list):
        for entry in trajectory:
            if isinstance(entry, dict):
                sample = _sample(benchmark, "trajectory", entry, source)
                if sample is not None:
                    out.append(sample)
    return out


def load_bench_docs(bench_dir: str) -> Dict[str, Dict[str, object]]:
    """All ``BENCH_*.json`` documents under ``bench_dir``, by path."""
    if not os.path.isdir(bench_dir):
        raise ResultsError(f"no benchmark directory at {bench_dir}")
    docs: Dict[str, Dict[str, object]] = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ResultsError(f"{path}: unreadable snapshot ({error})")
        if isinstance(doc, dict):
            docs[path] = doc
    return docs


def _ensure_bench_schema(index: ResultIndex) -> None:
    conn = index._conn
    with conn:
        conn.executescript(_BENCH_CREATE)
        conn.execute(
            "INSERT OR IGNORE INTO meta (name, value) VALUES (?, ?)",
            ("bench_schema_version", str(BENCH_SCHEMA_VERSION)),
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE name='bench_schema_version'"
        ).fetchone()
        if row["value"] != str(BENCH_SCHEMA_VERSION):
            conn.execute("DROP TABLE IF EXISTS bench_samples")
            conn.executescript(_BENCH_CREATE)
            conn.execute(
                "UPDATE meta SET value=? WHERE name='bench_schema_version'",
                (str(BENCH_SCHEMA_VERSION),),
            )


def sync_bench_dir(index: ResultIndex, bench_dir: str) -> int:
    """Upsert every dated sample under ``bench_dir``; returns the count.

    Idempotent: samples key on (benchmark, role, date), so re-syncing an
    unchanged directory rewrites the same rows.
    """
    docs = load_bench_docs(bench_dir)
    samples: List[BenchSample] = []
    for path, doc in docs.items():
        samples.extend(
            bench_samples_from_doc(doc, source=os.path.basename(path))
        )
    _ensure_bench_schema(index)
    conn = index._conn
    columns = (
        "benchmark", "role", "date", "kernel", "cycles_per_sec_best",
        "cycles_per_sec_median", "speedup_vs_baseline", "engine_events",
        "source",
    )
    assignments = ", ".join(
        f"{name}=excluded.{name}"
        for name in columns
        if name not in ("benchmark", "role", "date")
    )
    with conn:
        for sample in samples:
            row = sample.to_row()
            conn.execute(
                f"INSERT INTO bench_samples ({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)}) "
                f"ON CONFLICT(benchmark, role, date) "
                f"DO UPDATE SET {assignments}",
                tuple(row[name] for name in columns),
            )
    return len(samples)


def bench_trend(
    index: ResultIndex, benchmark: Optional[str] = None
) -> List[Dict[str, object]]:
    """Trajectory samples (plus baseline), oldest first."""
    _ensure_bench_schema(index)
    clauses = ["role IN ('baseline', 'trajectory')"]
    params: List[object] = []
    if benchmark is not None:
        clauses.append("benchmark=?")
        params.append(benchmark)
    cursor = index._conn.execute(
        "SELECT * FROM bench_samples WHERE "
        + " AND ".join(clauses)
        + " ORDER BY benchmark, date, role",
        params,
    )
    return [dict(row) for row in cursor]


def check_bench_docs(
    docs: Dict[str, Dict[str, object]], tolerance: float = 0.10
) -> List[RegressionFinding]:
    """Flag regressions in a set of snapshot documents.

    ``tolerance`` is the allowed fractional throughput drop of a
    trajectory entry below the best *earlier* entry before it is
    flagged.
    """
    findings: List[RegressionFinding] = []
    for path, doc in docs.items():
        benchmark = doc.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            continue
        ci = doc.get("ci") if isinstance(doc.get("ci"), dict) else {}
        min_ratio = ci.get("min_ratio")
        trajectory = [
            entry
            for entry in (doc.get("trajectory") or [])
            if isinstance(entry, dict) and entry.get("date")
        ]
        trajectory.sort(key=lambda e: str(e["date"]))
        if min_ratio is not None:
            for entry in trajectory:
                ratio = entry.get("speedup_vs_baseline")
                if ratio is not None and float(ratio) < float(min_ratio):
                    findings.append(
                        RegressionFinding(
                            benchmark=benchmark,
                            kind="ratio",
                            date=str(entry["date"]),
                            message=(
                                f"speedup_vs_baseline {float(ratio):.3f} "
                                f"< ci.min_ratio {float(min_ratio):.2f}"
                            ),
                        )
                    )
        best_so_far: Optional[float] = None
        best_date: Optional[str] = None
        for entry in trajectory:
            best = entry.get("cycles_per_sec_best")
            if best is None:
                continue
            best = float(best)
            if best_so_far is not None:
                floor = best_so_far * (1.0 - tolerance)
                if best < floor:
                    drop = 100.0 * (1.0 - best / best_so_far)
                    findings.append(
                        RegressionFinding(
                            benchmark=benchmark,
                            kind="trajectory",
                            date=str(entry["date"]),
                            message=(
                                f"throughput {best:,.1f} is {drop:.1f}% "
                                f"below the {best_date} best "
                                f"({best_so_far:,.1f}); tolerance is "
                                f"{100 * tolerance:.0f}% "
                                f"(same-host comparison)"
                            ),
                        )
                    )
            if best_so_far is None or best > best_so_far:
                best_so_far = best
                best_date = str(entry["date"])
    return findings


def render_trend(rows: Sequence[Dict[str, object]]) -> str:
    """The trajectory as an aligned table (one line per dated sample)."""
    if not rows:
        return "no benchmark samples indexed"
    lines = [
        f"{'benchmark':<18} {'date':<12} {'role':<10} {'kernel':<12} "
        f"{'cycles/sec':>12} {'ratio':>7}"
    ]
    for row in rows:
        best = row.get("cycles_per_sec_best")
        ratio = row.get("speedup_vs_baseline")
        best_text = f"{best:,.1f}" if best is not None else "-"
        ratio_text = f"{ratio:.3f}" if ratio is not None else "-"
        lines.append(
            f"{str(row['benchmark']):<18} {str(row['date']):<12} "
            f"{str(row['role']):<10} {str(row.get('kernel') or '-'):<12} "
            f"{best_text:>12} {ratio_text:>7}"
        )
    return "\n".join(lines)


def render_findings(findings: Sequence[RegressionFinding]) -> str:
    if not findings:
        return "perf observatory: no regressions flagged"
    return "\n".join(finding.render() for finding in findings)
