"""A/B diffing of two result sets (campaigns or store snapshots).

:func:`compare_indexes` lines two indexes up on run *identity* — the
(mix, approach, seed, horizon, target_insts) scope, not the content key,
so a code change that shifts every hash still diffs run-for-run — and
produces a ``compare_summary`` table of metric deltas:

* ``same``      — every headline metric within ``tolerance_pct``;
* ``improved``  — WS up or MS down beyond tolerance, nothing regressed;
* ``regressed`` — WS down or MS up beyond tolerance (flagged, and the
  CLI's ``--fail-on-regression`` turns them into a non-zero exit);
* ``only_a`` / ``only_b`` — runs present on one side only.

Sides can be SQLite index files or store directories
(:func:`repro.results.db.open_index` syncs a directory on the fly), so
"diff yesterday's store backup against today's" and "diff two campaign
hosts" are the same operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .db import ResultIndex
from .views import METRICS, gain_pct

#: Row identity for diffing: everything that scopes a run except the
#: content hash (which deliberately changes across STORE_VERSION bumps).
DiffKey = Tuple[str, str, object, object, object]


def _diff_key(row: Dict[str, object]) -> DiffKey:
    return (
        str(row["mix"]), str(row["approach"]), row["seed"], row["horizon"],
        row["target_insts"],
    )


@dataclass
class CompareSummary:
    """The full A/B diff, one row per run identity."""

    label_a: str
    label_b: str
    tolerance_pct: float
    rows: List[Dict[str, object]] = field(default_factory=list)

    def with_status(self, status: str) -> List[Dict[str, object]]:
        return [r for r in self.rows if r["status"] == status]

    @property
    def regressions(self) -> List[Dict[str, object]]:
        return self.with_status("regressed")

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row["status"]] = out.get(row["status"], 0) + 1
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "tolerance_pct": self.tolerance_pct,
            "counts": self.counts,
            "compare_summary": list(self.rows),
        }


def compare_indexes(
    index_a: ResultIndex,
    index_b: ResultIndex,
    *,
    label_a: str = "A",
    label_b: str = "B",
    tolerance_pct: float = 0.5,
    current_version_only: bool = True,
) -> CompareSummary:
    """Diff B against A: positive deltas mean B improved on A."""
    sides = []
    for index in (index_a, index_b):
        sides.append(
            {
                _diff_key(r): r
                for r in index.rows(
                    current_version_only=current_version_only
                )
            }
        )
    a_rows, b_rows = sides
    summary = CompareSummary(
        label_a=label_a, label_b=label_b, tolerance_pct=tolerance_pct
    )
    for key in sorted(
        set(a_rows) | set(b_rows), key=lambda k: tuple(map(str, k))
    ):
        mix, approach, seed, horizon, target_insts = key
        row: Dict[str, object] = {
            "mix": mix,
            "approach": approach,
            "seed": seed,
            "horizon": horizon,
            "target_insts": target_insts,
        }
        a, b = a_rows.get(key), b_rows.get(key)
        if a is None or b is None:
            row["status"] = "only_b" if a is None else "only_a"
            present = b if a is None else a
            for metric in METRICS:
                row[metric] = float(present[metric])
            summary.rows.append(row)
            continue
        improved = regressed = False
        for metric in METRICS:
            va, vb = float(a[metric]), float(b[metric])
            delta = gain_pct(vb, va, metric=metric)
            row[f"{metric}_a"] = va
            row[f"{metric}_b"] = vb
            row[f"{metric}_delta_pct"] = delta
            if metric in ("ws", "ms"):
                if delta > tolerance_pct:
                    improved = True
                elif delta < -tolerance_pct:
                    regressed = True
        row["identical_key"] = a["key"] == b["key"]
        row["status"] = (
            "regressed" if regressed else "improved" if improved else "same"
        )
        summary.rows.append(row)
    return summary


def render_compare(summary: CompareSummary) -> str:
    """The compare_summary as a text table plus a verdict block."""
    from ..experiments.report import render_table

    def fmt(row: Dict[str, object], metric: str) -> object:
        if f"{metric}_delta_pct" in row:
            return f"{row[f'{metric}_delta_pct']:+.2f}"
        return "-"

    rows = [
        [
            r["mix"], r["approach"],
            "-" if r["seed"] is None else r["seed"],
            r["status"], fmt(r, "ws"), fmt(r, "hs"), fmt(r, "ms"),
        ]
        for r in summary.rows
    ]
    table = render_table(
        ["mix", "approach", "seed", "status", "dWS%", "dHS%", "dMS%"],
        rows,
    )
    counts = summary.counts
    count_line = ", ".join(
        f"{counts[s]} {s}"
        for s in ("same", "improved", "regressed", "only_a", "only_b")
        if s in counts
    ) or "no runs on either side"
    parts = [
        f"compare {summary.label_b} (B) against {summary.label_a} (A), "
        f"tolerance ±{summary.tolerance_pct}% "
        f"(dMS% positive = fairness improved)",
        table,
        count_line,
    ]
    for row in summary.regressions:
        parts.append(
            f"REGRESSION: {row['mix']}/{row['approach']} "
            f"s{row['seed']} — WS {fmt(row, 'ws')}%, MS {fmt(row, 'ms')}%"
        )
    return "\n".join(parts)
