"""Physical address mapping and page-color extraction."""

from .address import AddressMap, MemLocation

__all__ = ["AddressMap", "MemLocation"]
