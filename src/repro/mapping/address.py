"""Physical-address field layout.

The layout, from the least-significant bit of the *cache-line* address, is::

    [ column | channel | rank | bank | row ]

With a row buffer of at least one page, the channel/rank/bank bits all sit
above the page offset, i.e. inside the physical frame number. That is the
property page-coloring partitioning relies on: by choosing which frames a
thread's pages land in, the OS chooses which banks and channels the thread
touches. The partitioning unit is the **bank color** — the (rank, bank) index
within a channel — so bank partitioning restricts banks while leaving every
channel usable, and channel partitioning (MCP) restricts channels while
leaving every bank usable.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from ..config import DRAMOrganization
from ..errors import MappingError
from ..utils import ilog2


class MemLocation(NamedTuple):
    """A decoded DRAM coordinate for one cache line.

    A NamedTuple: one is built per DRAM request, so construction cost
    matters, and the coordinate is plain immutable data.
    """

    channel: int
    rank: int
    bank: int
    row: int
    col: int

    @property
    def bank_key(self) -> tuple:
        """Globally unique bank identifier, for BLP accounting."""
        return (self.channel, self.rank, self.bank)


class AddressMap:
    """Bidirectional mapping between addresses and DRAM coordinates.

    ``bank_xor`` enables permutation-based bank interleaving (Zhang et al.,
    MICRO 2000): the bank index is XORed with the low row bits, so rows
    that would collide in one bank spread over all banks. This is the
    *hardware* alternative to partitioning that the paper's related work
    discusses — note that it deliberately defeats OS page coloring (the
    allocator's bank colors no longer pin the physical bank), so it is only
    meaningful together with the shared (unpartitioned) policy.
    """

    def __init__(
        self, org: DRAMOrganization, page_size: int, bank_xor: bool = False
    ) -> None:
        self.org = org
        self.page_size = page_size
        self.bank_xor = bank_xor
        self.line_bits = ilog2(org.line_size)
        self.col_bits = ilog2(org.row_size_bytes // org.line_size)
        self.chan_bits = ilog2(org.channels)
        self.rank_bits = ilog2(org.ranks_per_channel)
        self.bank_bits = ilog2(org.banks_per_rank)
        self.row_bits = ilog2(org.rows_per_bank)
        self.page_line_bits = ilog2(page_size) - self.line_bits
        if self.page_line_bits < 0:
            raise MappingError("page smaller than a cache line")
        if self.col_bits < self.page_line_bits:
            raise MappingError(
                "row buffer smaller than a page: bank bits would fall inside "
                "the page offset and the OS could not color them"
            )
        # Bit positions within the line address.
        self._chan_shift = self.col_bits
        self._rank_shift = self._chan_shift + self.chan_bits
        self._bank_shift = self._rank_shift + self.rank_bits
        self._row_shift = self._bank_shift + self.bank_bits
        self.total_line_bits = self._row_shift + self.row_bits
        # Frame-number field layout (frame = line address >> page_line_bits).
        self._col_hi_bits = self.col_bits - self.page_line_bits
        self.frames_total = org.capacity_bytes // page_size
        # Field masks, precomputed for the per-request decompose path.
        self._row_mask = (1 << self.row_bits) - 1
        self._bank_mask = (1 << self.bank_bits) - 1
        self._chan_mask = (1 << self.chan_bits) - 1
        self._rank_mask = (1 << self.rank_bits) - 1
        self._col_mask = (1 << self.col_bits) - 1

    # ------------------------------------------------------------------
    # Line-address <-> DRAM coordinates.
    # ------------------------------------------------------------------
    def decompose_line(self, line_addr: int) -> MemLocation:
        """Decode a cache-line address into its DRAM coordinate."""
        if line_addr < 0 or line_addr >> self.total_line_bits:
            raise MappingError(
                f"line address {line_addr:#x} outside "
                f"{self.org.capacity_bytes}-byte memory"
            )
        row = (line_addr >> self._row_shift) & self._row_mask
        bank = (line_addr >> self._bank_shift) & self._bank_mask
        if self.bank_xor:
            bank ^= row & self._bank_mask
        return MemLocation(
            (line_addr >> self._chan_shift) & self._chan_mask,
            (line_addr >> self._rank_shift) & self._rank_mask,
            bank,
            row,
            line_addr & self._col_mask,
        )

    def decompose(self, phys_addr: int) -> MemLocation:
        """Decode a byte address."""
        return self.decompose_line(phys_addr >> self.line_bits)

    def compose_line(self, loc: MemLocation) -> int:
        """Inverse of :meth:`decompose_line`."""
        for name, value, bits in (
            ("col", loc.col, self.col_bits),
            ("channel", loc.channel, self.chan_bits),
            ("rank", loc.rank, self.rank_bits),
            ("bank", loc.bank, self.bank_bits),
            ("row", loc.row, self.row_bits),
        ):
            if value < 0 or value >> bits:
                raise MappingError(f"{name}={value} does not fit in {bits} bits")
        bank = loc.bank
        if self.bank_xor:
            # XOR is self-inverse: recover the stored bank bits.
            bank ^= loc.row & ((1 << self.bank_bits) - 1)
        return (
            loc.col
            | (loc.channel << self._chan_shift)
            | (loc.rank << self._rank_shift)
            | (bank << self._bank_shift)
            | (loc.row << self._row_shift)
        )

    # ------------------------------------------------------------------
    # Frame-number <-> colors. The allocator works entirely at this level.
    # ------------------------------------------------------------------
    @property
    def bank_colors(self) -> int:
        """Number of bank colors (rank x bank), the partitioning unit."""
        return self.org.banks_per_channel

    @property
    def frames_per_bin(self) -> int:
        """Frames available in one (channel, bank color) bin."""
        return self.frames_total // (self.org.channels * self.bank_colors)

    def frame_fields(self, frame: int) -> tuple:
        """(channel, bank_color, slot) for a frame number.

        ``slot`` enumerates the frames inside one (channel, color) bin;
        consecutive slots fill the sub-page column positions of a row before
        moving to the next row, so sequential allocations within a bin enjoy
        row-buffer locality.
        """
        if frame < 0 or frame >= self.frames_total:
            raise MappingError(f"frame {frame} out of range")
        mask = lambda bits: (1 << bits) - 1  # noqa: E731
        col_hi = frame & mask(self._col_hi_bits)
        rest = frame >> self._col_hi_bits
        channel = rest & mask(self.chan_bits)
        rest >>= self.chan_bits
        rank = rest & mask(self.rank_bits)
        rest >>= self.rank_bits
        bank = rest & mask(self.bank_bits)
        row = rest >> self.bank_bits
        color = rank * self.org.banks_per_rank + bank
        slot = (row << self._col_hi_bits) | col_hi
        return channel, color, slot

    def compose_frame(self, channel: int, color: int, slot: int) -> int:
        """Inverse of :meth:`frame_fields`."""
        if not 0 <= channel < self.org.channels:
            raise MappingError(f"channel {channel} out of range")
        if not 0 <= color < self.bank_colors:
            raise MappingError(f"bank color {color} out of range")
        if not 0 <= slot < self.frames_per_bin:
            raise MappingError(f"slot {slot} out of range")
        rank, bank = divmod(color, self.org.banks_per_rank)
        col_hi = slot & ((1 << self._col_hi_bits) - 1)
        row = slot >> self._col_hi_bits
        frame = col_hi
        shift = self._col_hi_bits
        frame |= channel << shift
        shift += self.chan_bits
        frame |= rank << shift
        shift += self.rank_bits
        frame |= bank << shift
        shift += self.bank_bits
        frame |= row << shift
        return frame

    def frame_channel(self, frame: int) -> int:
        """Channel a frame lives in."""
        return self.frame_fields(frame)[0]

    def frame_bank_color(self, frame: int) -> int:
        """Bank color a frame lives in."""
        return self.frame_fields(frame)[1]

    def line_in_frame(self, frame: int, line_offset: int) -> int:
        """Cache-line address of line ``line_offset`` within ``frame``."""
        if not 0 <= line_offset < (1 << self.page_line_bits):
            raise MappingError(
                f"line offset {line_offset} outside a "
                f"{self.page_size}-byte page"
            )
        return (frame << self.page_line_bits) | line_offset

    def frames_in_bin(self, channel: int, color: int) -> Iterator[int]:
        """All frame numbers of one (channel, color) bin, in slot order."""
        for slot in range(self.frames_per_bin):
            yield self.compose_frame(channel, color, slot)
