"""Configuration dataclasses for the whole simulated system.

Everything tunable lives here, grouped by subsystem, with validation at
construction time so a bad experiment definition fails before any simulation
work happens. :class:`SystemConfig` is the single object the system builder
consumes.

Defaults model the evaluation configuration (calibrated so the paper's
contention regime is reproduced — see DESIGN.md, "Configuration
calibration"): four 3.2 GHz cores over DDR3-1066 (clock ratio 6), two
channels of one rank with eight banks (8 bank colors, 16 banks total), and
512 KB of private last-level cache per core.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .dram.timing import DRAMTimings, preset, scaled_timings
from .errors import ConfigError
from .utils import ilog2, is_power_of_two


@dataclass(frozen=True)
class DRAMOrganization:
    """Physical organization of the memory system.

    ``row_size_bytes`` is the per-bank row-buffer size. Bank partitioning by
    page coloring requires the row buffer to be at least one page, so the
    bank/channel address bits sit above the page offset where the OS can
    steer them.
    """

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 8192
    row_size_bytes: int = 8192
    line_size: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "row_size_bytes",
            "line_size",
        ):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.row_size_bytes < self.line_size:
            raise ConfigError("row_size_bytes must be >= line_size")

    @property
    def banks_per_channel(self) -> int:
        """Independently schedulable banks in one channel (ranks x banks)."""
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        """All banks in the system."""
        return self.channels * self.banks_per_channel

    @property
    def capacity_bytes(self) -> int:
        """Total DRAM capacity."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.rows_per_bank
            * self.row_size_bytes
        )


@dataclass(frozen=True)
class CoreConfig:
    """Simplified out-of-order core model parameters.

    The core retires up to ``width`` instructions per cycle, holds up to
    ``rob_size`` instructions in flight, and can have up to ``mshrs``
    outstanding memory requests (its memory-level parallelism cap).
    """

    width: int = 4
    rob_size: int = 128
    mshrs: int = 32

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigError("core width must be >= 1")
        if self.rob_size < self.width:
            raise ConfigError("rob_size must be >= width")
        if self.mshrs < 1:
            raise ConfigError("mshrs must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """Private per-core last-level cache in front of the memory system."""

    size_bytes: int = 512 * 1024
    associativity: int = 8
    line_size: int = 64
    hit_latency: int = 12  # CPU cycles
    writeback: bool = True

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ConfigError("cache line_size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigError(
                "cache size must be a multiple of associativity * line_size"
            )
        num_sets = self.size_bytes // (self.associativity * self.line_size)
        if not is_power_of_two(num_sets):
            raise ConfigError("number of cache sets must be a power of two")
        if self.hit_latency < 1:
            raise ConfigError("hit_latency must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass(frozen=True)
class ControllerConfig:
    """Per-channel memory controller parameters.

    ``scheduler`` names a registered request scheduler (see
    :mod:`repro.memctrl.schedulers`); ``scheduler_params`` is forwarded to
    its constructor. Writes are buffered and drained in bursts between the
    high and low watermarks, the standard write-drain policy.
    """

    read_queue_depth: int = 64
    write_queue_depth: int = 64
    write_high_watermark: int = 48
    write_low_watermark: int = 16
    scheduler: str = "frfcfs"
    scheduler_params: Dict[str, object] = field(default_factory=dict)
    refresh_enabled: bool = True
    #: Row-buffer management: "open" keeps rows open after a CAS (banking
    #: on locality); "closed" precharges a bank as soon as no queued
    #: request targets its open row (banking on conflicts).
    page_policy: str = "open"

    def __post_init__(self) -> None:
        if self.read_queue_depth < 1 or self.write_queue_depth < 1:
            raise ConfigError("queue depths must be >= 1")
        if self.page_policy not in ("open", "closed"):
            raise ConfigError("page_policy must be 'open' or 'closed'")
        if not (
            0 < self.write_low_watermark
            < self.write_high_watermark
            <= self.write_queue_depth
        ):
            raise ConfigError(
                "need 0 < write_low_watermark < write_high_watermark "
                "<= write_queue_depth"
            )


@dataclass(frozen=True)
class OSConfig:
    """OS memory-management parameters (paging and migration)."""

    page_size: int = 4096
    migration_enabled: bool = True
    #: "remap": all misplaced pages move at the epoch boundary, copy traffic
    #: charged for the hottest ``migration_budget_pages`` (steady-state
    #: model); "budget": only that many pages move at all (strict model).
    migration_mode: str = "remap"
    migration_budget_pages: int = 16  # pages whose copy traffic is modelled
    migration_lines_per_page: int = 8  # modelled DRAM traffic per moved page

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise ConfigError("page_size must be a power of two")
        if self.migration_mode not in ("remap", "budget"):
            raise ConfigError("migration_mode must be 'remap' or 'budget'")
        if self.migration_budget_pages < 0:
            raise ConfigError("migration_budget_pages must be >= 0")
        if self.migration_lines_per_page < 0:
            raise ConfigError("migration_lines_per_page must be >= 0")


@dataclass(frozen=True)
class PrefetcherConfig:
    """Per-core stride prefetcher parameters (an extension — off by
    default, matching the paper family's no-prefetching methodology).

    See :class:`repro.cpu.prefetcher.StridePrefetcher` for the mechanism.
    """

    enabled: bool = False
    degree: int = 2  # prefetches issued per trained access
    distance: int = 4  # how far ahead (in strides) the first prefetch lands
    table_entries: int = 16  # tracked regions (LRU replacement)

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigError("prefetcher degree must be >= 1")
        if self.distance < 1:
            raise ConfigError("prefetcher distance must be >= 1")
        if self.table_entries < 1:
            raise ConfigError("prefetcher table_entries must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Everything the system builder needs to instantiate a simulation."""

    num_cores: int = 4
    clock_ratio: int = 6  # CPU cycles per DRAM bus cycle
    dram_preset: str = "DDR3-1066"
    organization: DRAMOrganization = field(default_factory=DRAMOrganization)
    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    osmm: OSConfig = field(default_factory=OSConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    #: Permutation-based bank interleaving (bank bits XOR low row bits) —
    #: the hardware alternative to partitioning. Defeats page coloring, so
    #: only meaningful with the shared policy (experiment F12).
    bank_xor_interleave: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.clock_ratio < 1:
            raise ConfigError("clock_ratio must be >= 1")
        preset(self.dram_preset)  # raises on unknown names
        if self.cache.line_size != self.organization.line_size:
            raise ConfigError(
                "cache line size must match DRAM line size "
                f"({self.cache.line_size} != {self.organization.line_size})"
            )
        if self.organization.row_size_bytes < self.osmm.page_size:
            raise ConfigError(
                "row buffer must be at least one page for page-coloring "
                "bank partitioning "
                f"({self.organization.row_size_bytes} < {self.osmm.page_size})"
            )
        if self.num_cores > self.organization.banks_per_channel:
            raise ConfigError(
                "need at least one bank color per core "
                f"({self.num_cores} cores > "
                f"{self.organization.banks_per_channel} colors)"
            )

    @property
    def timings(self) -> DRAMTimings:
        """Device timings scaled to CPU cycles."""
        return scaled_timings(preset(self.dram_preset), self.clock_ratio)

    @property
    def bank_colors(self) -> int:
        """Number of partitionable bank colors (rank x bank, per channel)."""
        return self.organization.banks_per_channel

    @property
    def page_offset_bits(self) -> int:
        return ilog2(self.osmm.page_size)

    def with_scheduler(self, name: str, **params: object) -> "SystemConfig":
        """A copy of this config using a different memory scheduler."""
        controller = replace(
            self.controller, scheduler=name, scheduler_params=dict(params)
        )
        return replace(self, controller=controller)

    def describe(self) -> str:
        """Human-readable configuration summary (the paper's Table 1)."""
        org = self.organization
        timings = preset(self.dram_preset)
        lines = [
            f"Cores            : {self.num_cores}, {self.core.width}-wide, "
            f"{self.core.rob_size}-entry ROB, {self.core.mshrs} MSHRs",
            f"Clock            : {self.clock_ratio} CPU cycles per DRAM bus cycle",
            f"Private LLC      : {self.cache.size_bytes // 1024} KB per core, "
            f"{self.cache.associativity}-way, {self.cache.line_size} B lines, "
            f"{self.cache.hit_latency}-cycle hit",
            f"DRAM             : {timings.name}, {org.channels} channels x "
            f"{org.ranks_per_channel} ranks x {org.banks_per_rank} banks",
            f"Row buffer       : {org.row_size_bytes} B per bank; "
            f"{org.rows_per_bank} rows per bank; "
            f"{org.capacity_bytes // (1 << 20)} MB total",
            f"Bank colors      : {self.bank_colors} (partitioning unit)",
            f"Controller       : {self.controller.scheduler}, "
            f"{self.controller.read_queue_depth}-entry read queue, "
            f"{self.controller.write_queue_depth}-entry write queue "
            f"(drain {self.controller.write_high_watermark}/"
            f"{self.controller.write_low_watermark})",
            f"OS               : {self.osmm.page_size} B pages, migration "
            f"{'on' if self.osmm.migration_enabled else 'off'} "
            f"(budget {self.osmm.migration_budget_pages} pages)",
        ]
        return "\n".join(lines)
