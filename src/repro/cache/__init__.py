"""Set-associative cache model (used as the private per-core LLC)."""

from .cache import Cache, AccessResult
from .replacement import LRUPolicy, RandomPolicy, ReplacementPolicy, make_policy

__all__ = [
    "Cache",
    "AccessResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "make_policy",
]
