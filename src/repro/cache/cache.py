"""Set-associative write-back cache.

The cache operates on physical cache-line addresses (translation happens
before the cache in this system, which keeps page migration honest: moving a
page changes the lines the cache holds for it). It is used as each core's
private last-level cache; hits cost ``hit_latency`` cycles, misses go to the
memory system, and dirty evictions surface as writeback lines for the caller
to turn into DRAM write requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import CacheConfig
from ..utils import ilog2
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    writeback_line: Optional[int] = None  # dirty victim, if the fill evicted one


# Immutable, so the two dominant outcomes (hit, clean miss) are shared
# singletons instead of a fresh allocation per access.
_HIT = AccessResult(hit=True)
_CLEAN_MISS = AccessResult(hit=False)


class _Line:
    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool) -> None:
        self.tag = tag
        self.dirty = dirty


class Cache:
    """One set-associative cache instance."""

    def __init__(
        self,
        config: CacheConfig,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._set_bits = ilog2(self.num_sets)
        self._set_mask = self.num_sets - 1
        # ways[set] maps way index -> _Line; sparse, created on first touch.
        # A parallel tag index (set -> tag -> way) makes lookup a dict get
        # instead of an associativity-wide scan.
        self._ways: Dict[int, Dict[int, _Line]] = {}
        self._tag_to_way: Dict[int, Dict[int, int]] = {}
        policy_params = {"seed": seed} if replacement == "random" else {}
        self.policy: ReplacementPolicy = make_policy(
            replacement, self.num_sets, self.associativity, **policy_params
        )
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_writebacks = 0

    # ------------------------------------------------------------------
    def _locate(self, set_index: int, tag: int) -> Optional[int]:
        tags = self._tag_to_way.get(set_index)
        if tags is None:
            return None
        return tags.get(tag)

    def access(self, line_addr: int, is_write: bool) -> AccessResult:
        """Look up ``line_addr``; allocate on miss (write-allocate).

        Returns whether it hit and, on a miss that evicted a dirty line,
        the physical line address that must be written back.
        """
        set_index = line_addr & self._set_mask
        tag = line_addr >> self._set_bits
        way = self._locate(set_index, tag)
        if way is not None:
            self.stat_hits += 1
            self.policy.on_touch(set_index, way)
            if is_write and self.config.writeback:
                self._ways[set_index][way].dirty = True
            return _HIT
        self.stat_misses += 1
        writeback = self._fill(set_index, tag, dirty=is_write and self.config.writeback)
        if writeback is None:
            return _CLEAN_MISS
        return AccessResult(hit=False, writeback_line=writeback)

    def _fill(self, set_index: int, tag: int, dirty: bool) -> Optional[int]:
        ways = self._ways.setdefault(set_index, {})
        tags = self._tag_to_way.setdefault(set_index, {})
        if len(ways) < self.associativity:
            way = len(ways)
            # After an invalidation the set has a hole, so this way index
            # may already be populated; the overwritten line's tag must
            # leave the index (matching the historical scan semantics,
            # where an overwritten line simply stopped being findable).
            old = ways.get(way)
            if old is not None:
                del tags[old.tag]
            ways[way] = _Line(tag, dirty)
            tags[tag] = way
            self.policy.on_touch(set_index, way)
            return None
        way = self.policy.victim(set_index)
        victim = ways[way]
        writeback = None
        if victim.dirty:
            writeback = (victim.tag << self._set_bits) | set_index
            self.stat_writebacks += 1
        del tags[victim.tag]
        ways[way] = _Line(tag, dirty)
        tags[tag] = way
        self.policy.on_touch(set_index, way)
        return writeback

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line without demand-access accounting (prefetch fills).

        Returns the dirty victim's line address when the fill evicted one,
        None otherwise (including when the line was already resident).
        """
        set_index = line_addr & self._set_mask
        tag = line_addr >> self._set_bits
        if self._locate(set_index, tag) is not None:
            return None
        return self._fill(set_index, tag, dirty=False)

    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """True if ``line_addr`` is currently resident."""
        set_index = line_addr & self._set_mask
        tag = line_addr >> self._set_bits
        return self._locate(set_index, tag) is not None

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (used when a page migrates); returns True if present.

        The dirty bit is discarded deliberately: the migration engine copies
        the page from DRAM, and modelling the flush as part of the copy
        traffic keeps the accounting in one place.
        """
        set_index = line_addr & self._set_mask
        tag = line_addr >> self._set_bits
        way = self._locate(set_index, tag)
        if way is None:
            return False
        del self._ways[set_index][way]
        del self._tag_to_way[set_index][tag]
        return True

    @property
    def miss_rate(self) -> float:
        """Miss fraction over all accesses so far (0 when untouched)."""
        total = self.stat_hits + self.stat_misses
        return self.stat_misses / total if total else 0.0
