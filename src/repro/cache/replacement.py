"""Cache replacement policies.

Policies operate on opaque per-set way indices; the cache tells the policy
about touches and asks it for victims. LRU is the default (and what the
paper family assumes); Random exists mainly to exercise the plug point and
for sensitivity runs.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List

from ..errors import ConfigError


class ReplacementPolicy(abc.ABC):
    """Interface every replacement policy implements."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity

    @abc.abstractmethod
    def on_touch(self, set_index: int, way: int) -> None:
        """A hit or a fill touched ``way`` in ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Way to evict from a full ``set_index``."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with an explicit recency stack per set."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        # Recency stacks are created lazily; most sets in short runs are
        # never touched.
        self._stacks: Dict[int, List[int]] = {}

    def _stack(self, set_index: int) -> List[int]:
        stack = self._stacks.get(set_index)
        if stack is None:
            stack = []
            self._stacks[set_index] = stack
        return stack

    def on_touch(self, set_index: int, way: int) -> None:
        stack = self._stack(set_index)
        if way in stack:
            stack.remove(way)
        stack.append(way)  # most recent at the end

    def victim(self, set_index: int) -> int:
        stack = self._stack(set_index)
        if not stack:
            return 0
        return stack[0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection with a deterministic stream."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def on_touch(self, set_index: int, way: int) -> None:
        pass  # random replacement keeps no recency state

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.associativity)


_POLICIES = {"lru": LRUPolicy, "random": RandomPolicy}


def make_policy(
    name: str, num_sets: int, associativity: int, **params: object
) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ConfigError(
            f"unknown replacement policy {name!r}; known: {known}"
        ) from None
    return cls(num_sets, associativity, **params)
