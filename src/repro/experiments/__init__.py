"""Experiment catalog: every table and figure of the reconstructed evaluation.

Each experiment is a function taking a :class:`~repro.sim.runner.Runner`
(and optional scope arguments) and returning an
:class:`~repro.experiments.report.ExperimentResult` that renders as the
same rows/series the paper's table or figure reports. The pytest-benchmark
modules under ``benchmarks/`` are thin wrappers over these functions, and
the CLI exposes them as ``repro-dbp run <id>``.
"""

from .report import ExperimentResult, render_table
from .catalog import (
    EXPERIMENTS,
    run_experiment,
    t1_configuration,
    t2_characteristics,
    t3_mixes,
    f1_bank_sensitivity,
    f2_ws_dbp_vs_ebp,
    f3_ms_dbp_vs_ebp,
    f4_dbp_tcm,
    f5_schedulers,
    f6_banks_sweep,
    f7_cores_sweep,
    f8_epoch_sweep,
    f9_ablation,
    f10_page_policy,
    f11_prefetching,
    f12_xor_interleaving,
    f13_seed_robustness,
)

__all__ = [
    "ExperimentResult",
    "render_table",
    "EXPERIMENTS",
    "run_experiment",
    "t1_configuration",
    "t2_characteristics",
    "t3_mixes",
    "f1_bank_sensitivity",
    "f2_ws_dbp_vs_ebp",
    "f3_ms_dbp_vs_ebp",
    "f4_dbp_tcm",
    "f5_schedulers",
    "f6_banks_sweep",
    "f7_cores_sweep",
    "f8_epoch_sweep",
    "f9_ablation",
    "f10_page_policy",
    "f11_prefetching",
    "f12_xor_interleaving",
    "f13_seed_robustness",
]
