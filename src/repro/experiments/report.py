"""Experiment results and plain-text rendering.

An :class:`ExperimentResult` is the paper-facing artifact of a run: the
table/figure id, the rows a reader would see, and a ``summary`` of named
scalar deltas (the "+4.3%"-style numbers the abstract quotes) that the
benches assert shape properties on and EXPERIMENTS.md records.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """The experiment as a paper-style text table."""
        header = f"[{self.exp_id}] {self.title}"
        parts = [header, "=" * len(header)]
        parts.append(render_table(self.columns, self.rows))
        if self.summary:
            parts.append("")
            width = max(len(k) for k in self.summary)
            for key, value in self.summary.items():
                parts.append(f"  {key:<{width}} : {value:+.2f}%")
        if self.notes:
            parts.append("")
            parts.append(f"  note: {self.notes}")
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        """All values of one column, by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_csv(self) -> str:
        """The table as CSV (header row first; summary/notes omitted)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json(self) -> str:
        """The full result — rows, summary, notes — as a JSON document."""
        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "columns": list(self.columns),
                "rows": [list(row) for row in self.rows],
                "summary": dict(self.summary),
                "notes": self.notes,
            },
            indent=2,
        )


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table with a header rule."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    out = [line(list(columns)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def percent_delta(new: float, base: float) -> float:
    """Relative change of ``new`` over ``base`` in percent."""
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return 100.0 * (new / base - 1.0)
