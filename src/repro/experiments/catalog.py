"""The reconstructed evaluation: one function per table/figure.

Scope arguments (``mixes``, ``horizon`` via the Runner) let the benches and
the CLI trade coverage for time without changing what each experiment
means. See DESIGN.md's per-experiment index for the mapping to the paper's
claims.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.fixed import FixedAllocationPolicy
from ..config import PrefetcherConfig, SystemConfig
from ..core.dbp import DBPConfig, DynamicBankPartitioning
from ..core.demand import DemandConfig
from ..errors import ExperimentError
from ..sim.runner import Runner
from ..sim.system import System
from ..utils import geometric_mean
from ..workloads import MIXES, get_mix, mixes_for_cores
from ..workloads.mixes import MAIN_MIXES
from .report import ExperimentResult, percent_delta

#: Subset used by the heavier sweeps to bound wall-clock time.
FAST_MIXES: List[str] = ["M1", "M4", "M6", "M7", "M10"]

#: Applications whose bank-count sensitivity F1 plots.
F1_APPS: List[str] = ["mcf", "lbm", "libquantum", "milc"]


def _default_runner(runner: Optional[Runner]) -> Runner:
    return runner if runner is not None else Runner()


def _gmean_or_nan(values: Sequence[float]) -> float:
    return geometric_mean(values) if values else float("nan")


def _metric_sweep(
    runner: Runner, mixes: Sequence[str], approaches: Sequence[str]
) -> Dict[str, Dict[str, object]]:
    """Run mixes x approaches; returns per-approach WS/MS lists.

    Delegates to the campaign subsystem: with ``runner.jobs > 1`` the grid
    fans out over worker processes, and with a ``runner.store`` attached
    results persist across invocations. At ``jobs=1`` with no store this
    is exactly the historical serial loop.
    """
    from ..campaign.api import sweep_metrics

    return sweep_metrics(runner, mixes, approaches)


def _sweep_result(
    exp_id: str,
    title: str,
    metric: str,
    runner: Runner,
    mixes: Sequence[str],
    approaches: Sequence[str],
) -> ExperimentResult:
    data = _metric_sweep(runner, mixes, approaches)
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        columns=["mix"] + list(approaches),
    )
    for index, mix_name in enumerate(mixes):
        result.rows.append(
            [mix_name] + [data[a][metric][index] for a in approaches]
        )
    result.rows.append(
        ["gmean"] + [_gmean_or_nan(data[a][metric]) for a in approaches]
    )
    return result


# ---------------------------------------------------------------------------
# Tables.
# ---------------------------------------------------------------------------
def t1_configuration(runner: Optional[Runner] = None) -> ExperimentResult:
    """T1: the simulated system configuration."""
    runner = _default_runner(runner)
    result = ExperimentResult(
        exp_id="T1",
        title="System configuration",
        columns=["parameter", "value"],
    )
    for line in runner.config.describe().splitlines():
        key, _, value = line.partition(":")
        result.rows.append([key.strip(), value.strip()])
    return result


def t2_characteristics(
    runner: Optional[Runner] = None, apps: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """T2: measured alone-run characteristics of every application."""
    runner = _default_runner(runner)
    if apps is None:
        from ..workloads.profiles import APP_PROFILES

        apps = sorted(APP_PROFILES, key=lambda a: -APP_PROFILES[a].mpki)
    result = ExperimentResult(
        exp_id="T2",
        title="Benchmark characteristics (measured, alone on full machine)",
        columns=["app", "ipc", "mpki", "rbh", "blp", "class"],
    )
    for app in apps:
        config = replace(runner.config, num_cores=1)
        system = System(
            config, [runner.trace_for(app)], horizon=runner.horizon
        )
        system.run()
        profile = system.profiler.snapshot(system.engine.now).profile(0)
        ipc = system.cores[0].ipc()
        kind = "intensive" if profile.mpki >= 1.0 else "light"
        result.rows.append(
            [app, ipc, profile.mpki, profile.rbh, profile.blp, kind]
        )
    return result


def t3_mixes(runner: Optional[Runner] = None) -> ExperimentResult:
    """T3: the multiprogrammed workload mixes."""
    result = ExperimentResult(
        exp_id="T3",
        title="Workload mixes",
        columns=["mix", "category", "intensive", "applications"],
    )
    for name in sorted(MIXES, key=lambda n: (len(MIXES[n].apps), n)):
        mix = MIXES[name]
        result.rows.append(
            [
                mix.name,
                mix.category,
                f"{mix.intensive_count()}/{mix.num_cores}",
                " ".join(mix.apps),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Figures.
# ---------------------------------------------------------------------------
def f1_bank_sensitivity(
    runner: Optional[Runner] = None,
    apps: Optional[Sequence[str]] = None,
    bank_counts: Sequence[int] = (1, 2, 4, 8),
) -> ExperimentResult:
    """F1 (motivation): single-thread IPC versus banks available.

    High-BLP, low-locality applications (mcf-like) lose IPC sharply when
    confined to few bank colors; streaming applications are nearly flat.
    This is the bank-level-parallelism loss equal partitioning inflicts and
    DBP exists to avoid.
    """
    runner = _default_runner(runner)
    apps = list(apps) if apps is not None else list(F1_APPS)
    max_colors = runner.config.bank_colors
    counts = [c for c in bank_counts if c <= max_colors]
    result = ExperimentResult(
        exp_id="F1",
        title="Single-thread IPC vs. bank colors (normalized to max)",
        columns=["app"] + [f"{c} colors" for c in counts],
    )
    for app in apps:
        ipcs = []
        for count in counts:
            config = replace(runner.config, num_cores=1)
            policy = FixedAllocationPolicy({0: list(range(count))})
            system = System(
                config,
                [runner.trace_for(app)],
                horizon=runner.horizon,
                policy=policy,
            )
            system.run()
            ipcs.append(system.cores[0].ipc())
        base = ipcs[-1]
        result.rows.append([app] + [ipc / base for ipc in ipcs])
    # Summary: how much the most bank-hungry app loses at the fewest banks.
    losses = {row[0]: 100.0 * (1.0 - row[1]) for row in result.rows}
    for app, loss in losses.items():
        result.summary[f"{app}_loss_at_min_banks"] = -loss
    return result


def f2_ws_dbp_vs_ebp(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F2: weighted speedup — Shared(FR-FCFS) vs EBP vs DBP (claim C1)."""
    runner = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(MAIN_MIXES)
    approaches = ["shared-frfcfs", "ebp", "dbp"]
    result = _sweep_result(
        "F2", "Weighted speedup per mix", "ws", runner, mixes, approaches
    )
    gmeans = result.rows[-1]
    result.summary["dbp_vs_ebp_ws_pct"] = percent_delta(gmeans[3], gmeans[2])
    result.summary["dbp_vs_shared_ws_pct"] = percent_delta(gmeans[3], gmeans[1])
    result.notes = "paper claim C1: DBP improves WS over EBP by ~4.3%"
    return result


def f3_ms_dbp_vs_ebp(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F3: maximum slowdown — Shared(FR-FCFS) vs EBP vs DBP (claim C1)."""
    runner = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(MAIN_MIXES)
    approaches = ["shared-frfcfs", "ebp", "dbp"]
    result = _sweep_result(
        "F3",
        "Maximum slowdown per mix (lower is fairer)",
        "ms",
        runner,
        mixes,
        approaches,
    )
    gmeans = result.rows[-1]
    result.summary["dbp_vs_ebp_ms_pct"] = percent_delta(gmeans[3], gmeans[2])
    result.summary["dbp_vs_shared_ms_pct"] = percent_delta(gmeans[3], gmeans[1])
    result.notes = "paper claim C1: DBP improves fairness over EBP by ~16%"
    return result


def f4_dbp_tcm(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F4: TCM vs MCP vs EBP-TCM vs DBP-TCM (claims C2 and C3)."""
    runner = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(MAIN_MIXES)
    approaches = ["tcm", "mcp", "ebp-tcm", "dbp-tcm"]
    data = _metric_sweep(runner, mixes, approaches)
    result = ExperimentResult(
        exp_id="F4",
        title="Scheduling x partitioning: WS and MS (gmean over mixes)",
        columns=["approach", "ws", "ms", "hs"],
    )
    for approach in approaches:
        result.rows.append(
            [
                approach,
                _gmean_or_nan(data[approach]["ws"]),
                _gmean_or_nan(data[approach]["ms"]),
                _gmean_or_nan(data[approach]["hs"]),
            ]
        )
    ws = {row[0]: row[1] for row in result.rows}
    ms = {row[0]: row[2] for row in result.rows}
    result.summary["dbptcm_vs_tcm_ws_pct"] = percent_delta(ws["dbp-tcm"], ws["tcm"])
    result.summary["dbptcm_vs_tcm_ms_pct"] = percent_delta(ms["dbp-tcm"], ms["tcm"])
    result.summary["dbptcm_vs_mcp_ws_pct"] = percent_delta(ws["dbp-tcm"], ws["mcp"])
    result.summary["dbptcm_vs_mcp_ms_pct"] = percent_delta(ms["dbp-tcm"], ms["mcp"])
    result.notes = (
        "paper claims C2/C3: DBP-TCM over TCM +6.2% WS / +16.7% fairness; "
        "over MCP +5.3% WS / +37% fairness"
    )
    return result


def f5_schedulers(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F5 (context): the six memory schedulers, unpartitioned."""
    runner = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    approaches = ["shared-fcfs", "shared-frfcfs", "parbs", "atlas", "bliss", "tcm"]
    data = _metric_sweep(runner, mixes, approaches)
    result = ExperimentResult(
        exp_id="F5",
        title="Memory schedulers without partitioning (gmean over mixes)",
        columns=["scheduler", "ws", "ms", "hs"],
    )
    for approach in approaches:
        result.rows.append(
            [
                approach,
                _gmean_or_nan(data[approach]["ws"]),
                _gmean_or_nan(data[approach]["ms"]),
                _gmean_or_nan(data[approach]["hs"]),
            ]
        )
    ws = {row[0]: row[1] for row in result.rows}
    result.summary["frfcfs_vs_fcfs_ws_pct"] = percent_delta(
        ws["shared-frfcfs"], ws["shared-fcfs"]
    )
    return result


def f6_banks_sweep(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F6 (sensitivity): bank colors per channel (8 / 16 / 32)."""
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    organizations = [
        ("8", replace(base.config.organization, ranks_per_channel=1, banks_per_rank=8)),
        ("16", replace(base.config.organization, ranks_per_channel=2, banks_per_rank=8)),
        ("32", replace(base.config.organization, ranks_per_channel=2, banks_per_rank=16)),
    ]
    result = ExperimentResult(
        exp_id="F6",
        title="DBP vs EBP across bank-color counts (gmean over mixes)",
        columns=["colors", "ebp ws", "dbp ws", "ebp ms", "dbp ms"],
    )
    for label, organization in organizations:
        sub = _sub_runner(base, replace(base.config, organization=organization))
        data = _metric_sweep(sub, mixes, ["ebp", "dbp"])
        result.rows.append(
            [
                label,
                _gmean_or_nan(data["ebp"]["ws"]),
                _gmean_or_nan(data["dbp"]["ws"]),
                _gmean_or_nan(data["ebp"]["ms"]),
                _gmean_or_nan(data["dbp"]["ms"]),
            ]
        )
    first = result.rows[0]
    result.summary["dbp_vs_ebp_ws_pct_at_8"] = percent_delta(first[2], first[1])
    result.notes = (
        "DBP's edge over EBP should shrink as banks become plentiful"
    )
    return result


def f7_cores_sweep(runner: Optional[Runner] = None) -> ExperimentResult:
    """F7 (sensitivity): core count (2 / 4 / 8)."""
    base = _default_runner(runner)
    result = ExperimentResult(
        exp_id="F7",
        title="DBP vs EBP across core counts (gmean over that size's mixes)",
        columns=["cores", "ebp ws", "dbp ws", "ebp ms", "dbp ms"],
    )
    for cores in (2, 4, 8):
        mixes = [m.name for m in mixes_for_cores(cores)]
        if cores == 4:
            mixes = list(FAST_MIXES)
        if not mixes:
            raise ExperimentError(f"no mixes defined for {cores} cores")
        data = _metric_sweep(base, mixes, ["ebp", "dbp"])
        result.rows.append(
            [
                str(cores),
                _gmean_or_nan(data["ebp"]["ws"]),
                _gmean_or_nan(data["dbp"]["ws"]),
                _gmean_or_nan(data["ebp"]["ms"]),
                _gmean_or_nan(data["dbp"]["ms"]),
            ]
        )
    return result


def f8_epoch_sweep(
    runner: Optional[Runner] = None,
    mixes: Optional[Sequence[str]] = None,
    epochs: Sequence[int] = (10_000, 25_000, 50_000, 100_000),
) -> ExperimentResult:
    """F8 (sensitivity): DBP repartitioning epoch length."""
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    result = ExperimentResult(
        exp_id="F8",
        title="DBP sensitivity to epoch length (gmean over mixes)",
        columns=["epoch", "ws", "ms"],
    )
    for epoch in epochs:
        ws, ms = [], []
        for mix_name in mixes:
            mix = get_mix(mix_name)
            policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=epoch))
            metrics = base.run_custom(
                list(mix.apps),
                policy,
                label=f"dbp@{epoch}",
                mix_name=mix.name,
            ).metrics
            ws.append(metrics.weighted_speedup)
            ms.append(metrics.max_slowdown)
        result.rows.append([str(epoch), _gmean_or_nan(ws), _gmean_or_nan(ms)])
    return result


def f9_ablation(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F9 (ablation): demand-estimator ingredients.

    Variants: the full estimator; BLP-only (no streaming deduction);
    MPKI-proportional (strawman); full but without pooling non-intensive
    threads.
    """
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    variants = [
        ("full", DBPConfig()),
        ("blp-only", DBPConfig(demand=DemandConfig(mode="blp"))),
        ("mpki", DBPConfig(demand=DemandConfig(mode="mpki"))),
        ("no-pool", DBPConfig(pool_non_intensive=False)),
    ]
    result = ExperimentResult(
        exp_id="F9",
        title="DBP demand-estimator ablation (gmean over mixes)",
        columns=["variant", "ws", "ms"],
    )
    for label, dbp_config in variants:
        ws, ms = [], []
        for mix_name in mixes:
            mix = get_mix(mix_name)
            policy = DynamicBankPartitioning(dbp_config)
            metrics = base.run_custom(
                list(mix.apps),
                policy,
                label=f"dbp-{label}",
                mix_name=mix.name,
            ).metrics
            ws.append(metrics.weighted_speedup)
            ms.append(metrics.max_slowdown)
        result.rows.append([label, _gmean_or_nan(ws), _gmean_or_nan(ms)])
    return result


def _sub_runner(
    base: Runner, config: SystemConfig, seed: Optional[int] = None
) -> Runner:
    """A Runner sharing the base's scope but a different config or seed.

    Jobs and the persistent store carry over, so sensitivity sweeps built
    from sub-runners parallelize and resume exactly like the main grid.
    """
    return Runner(
        config=config,
        horizon=base.horizon,
        seed=base.seed if seed is None else seed,
        target_insts=base.target_insts,
        validate=base.validate,
        ahead_limit=base.ahead_limit,
        store=base.store,
        jobs=base.jobs,
    )


def f10_page_policy(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F10 (extension): open-page vs closed-page row management.

    Bank partitioning's benefit comes from protecting row-buffer locality;
    a closed-page controller gives that locality up voluntarily, so the
    open/closed comparison bounds how much of the policy story depends on
    the row-management assumption.
    """
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    result = ExperimentResult(
        exp_id="F10",
        title="Page policy: open vs closed rows (gmean over mixes)",
        columns=["page policy", "shared ws", "dbp ws", "shared ms", "dbp ms"],
    )
    for policy_name in ("open", "closed"):
        controller = replace(
            base.config.controller, page_policy=policy_name
        )
        sub = _sub_runner(base, replace(base.config, controller=controller))
        data = _metric_sweep(sub, mixes, ["shared-frfcfs", "dbp"])
        result.rows.append(
            [
                policy_name,
                _gmean_or_nan(data["shared-frfcfs"]["ws"]),
                _gmean_or_nan(data["dbp"]["ws"]),
                _gmean_or_nan(data["shared-frfcfs"]["ms"]),
                _gmean_or_nan(data["dbp"]["ms"]),
            ]
        )
    return result


def f11_prefetching(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F11 (extension): how stride prefetching changes the picture.

    The paper family evaluates without prefetchers. Turning one on
    multiplies streaming threads' outstanding requests — and therefore
    their bank footprint and bus share — which stresses both the
    interference the partitioners remove and the BLP they must preserve.
    """
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    result = ExperimentResult(
        exp_id="F11",
        title="Stride prefetching off/on (gmean over mixes)",
        columns=[
            "prefetch",
            "shared ws",
            "ebp ws",
            "dbp ws",
            "shared ms",
            "ebp ms",
            "dbp ms",
        ],
    )
    for enabled in (False, True):
        prefetcher = PrefetcherConfig(enabled=enabled, degree=2, distance=4)
        sub = _sub_runner(base, replace(base.config, prefetcher=prefetcher))
        data = _metric_sweep(sub, mixes, ["shared-frfcfs", "ebp", "dbp"])
        result.rows.append(
            [
                "on" if enabled else "off",
                _gmean_or_nan(data["shared-frfcfs"]["ws"]),
                _gmean_or_nan(data["ebp"]["ws"]),
                _gmean_or_nan(data["dbp"]["ws"]),
                _gmean_or_nan(data["shared-frfcfs"]["ms"]),
                _gmean_or_nan(data["ebp"]["ms"]),
                _gmean_or_nan(data["dbp"]["ms"]),
            ]
        )
    off, on = result.rows
    result.summary["prefetch_shared_ws_pct"] = percent_delta(on[1], off[1])
    return result


def f12_xor_interleaving(
    runner: Optional[Runner] = None, mixes: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """F12 (extension): XOR bank permutation vs software partitioning.

    Permutation-based interleaving spreads row-conflict hotspots over all
    banks in hardware; DBP removes inter-thread conflicts in software. The
    comparison shows where each helps: XOR mainly recovers throughput lost
    to pathological bank collisions, partitioning mainly recovers fairness
    lost to inter-thread interference.
    """
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    result = ExperimentResult(
        exp_id="F12",
        title="XOR bank interleaving vs partitioning (gmean over mixes)",
        columns=["approach", "ws", "ms"],
    )
    # Plain shared and DBP on the normal mapping...
    data = _metric_sweep(base, mixes, ["shared-frfcfs", "dbp"])
    result.rows.append(
        [
            "shared",
            _gmean_or_nan(data["shared-frfcfs"]["ws"]),
            _gmean_or_nan(data["shared-frfcfs"]["ms"]),
        ]
    )
    result.rows.append(
        ["dbp", _gmean_or_nan(data["dbp"]["ws"]), _gmean_or_nan(data["dbp"]["ms"])]
    )
    # ...versus shared on the XOR-permuted mapping.
    xor_runner = _sub_runner(
        base, replace(base.config, bank_xor_interleave=True)
    )
    xor_data = _metric_sweep(xor_runner, mixes, ["shared-frfcfs"])
    result.rows.append(
        [
            "shared+xor",
            _gmean_or_nan(xor_data["shared-frfcfs"]["ws"]),
            _gmean_or_nan(xor_data["shared-frfcfs"]["ms"]),
        ]
    )
    result.notes = (
        "XOR interleaving defeats page coloring, so partitioned approaches "
        "are not defined on that mapping"
    )
    return result


def f13_seed_robustness(
    runner: Optional[Runner] = None,
    mixes: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """F13 (robustness): claim C1 across workload-generation seeds.

    The synthetic traces are stochastic; a claim that only holds for one
    seed would be an artifact. Each row regenerates every trace and every
    alone-run baseline from scratch.
    """
    base = _default_runner(runner)
    mixes = list(mixes) if mixes is not None else list(FAST_MIXES)
    result = ExperimentResult(
        exp_id="F13",
        title="DBP vs EBP across trace seeds (gmean over mixes)",
        columns=["seed", "ebp ws", "dbp ws", "ebp ms", "dbp ms", "C1 ws %", "C1 ms %"],
    )
    for seed in seeds:
        sub = _sub_runner(base, base.config, seed=seed)
        data = _metric_sweep(sub, mixes, ["ebp", "dbp"])
        ebp_ws = _gmean_or_nan(data["ebp"]["ws"])
        dbp_ws = _gmean_or_nan(data["dbp"]["ws"])
        ebp_ms = _gmean_or_nan(data["ebp"]["ms"])
        dbp_ms = _gmean_or_nan(data["dbp"]["ms"])
        result.rows.append(
            [
                str(seed),
                ebp_ws,
                dbp_ws,
                ebp_ms,
                dbp_ms,
                percent_delta(dbp_ws, ebp_ws),
                percent_delta(dbp_ms, ebp_ms),
            ]
        )
    ws_deltas = [row[5] for row in result.rows]
    ms_deltas = [row[6] for row in result.rows]
    result.summary["min_ws_delta_pct"] = min(ws_deltas)
    result.summary["max_ms_delta_pct"] = max(ms_deltas)
    return result


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "T1": t1_configuration,
    "T2": t2_characteristics,
    "T3": t3_mixes,
    "F1": f1_bank_sensitivity,
    "F2": f2_ws_dbp_vs_ebp,
    "F3": f3_ms_dbp_vs_ebp,
    "F4": f4_dbp_tcm,
    "F5": f5_schedulers,
    "F6": f6_banks_sweep,
    "F7": f7_cores_sweep,
    "F8": f8_epoch_sweep,
    "F9": f9_ablation,
    "F10": f10_page_policy,
    "F11": f11_prefetching,
    "F12": f12_xor_interleaving,
    "F13": f13_seed_robustness,
}


def run_experiment(
    exp_id: str, runner: Optional[Runner] = None, **kwargs
) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {known}")
    return EXPERIMENTS[key](runner, **kwargs)
